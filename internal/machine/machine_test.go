package machine

import (
	"errors"
	"testing"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/mem"
	"fuzzybarrier/internal/trace"
)

func simpleMem(procs int) mem.Config {
	return mem.Config{
		Words:       1 << 12,
		Procs:       procs,
		HitLatency:  1,
		MissLatency: 1,
		CacheLines:  0,
		Modules:     procs,
		ModuleBusy:  1,
	}
}

// loopProgram builds the canonical fuzzy-barrier loop: per iteration, a
// non-barrier phase of `work` cycles followed by a barrier region of
// `region` cycles, repeated iters times, synchronizing all `procs`
// processors at each iteration boundary.
func loopProgram(t *testing.T, self, procs int, work, region, iters int64) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("loop")
	b.InNonBarrier().
		BarrierInit(1, uint64(core.AllExcept(procs, self))).
		Ldi(1, 0).
		Ldi(2, iters)
	b.Label("loop")
	if work > 0 {
		b.Work(work)
	} else {
		b.Nop()
	}
	b.InBarrier()
	if region > 0 {
		b.Work(region)
	}
	b.Addi(1, 1, 1)
	b.CondBr(isa.BLT, 1, 2, "loop")
	b.InNonBarrier()
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := p.Validate(false); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return p
}

func TestSingleProcessorArithmetic(t *testing.T) {
	b := isa.NewBuilder("arith")
	b.Ldi(1, 6).Ldi(2, 7).Mul(3, 1, 2). // r3 = 42
						Addi(4, 3, 100). // r4 = 142
						Ldi(5, 10).
						St(5, 0, 4). // mem[10] = 142
						Ld(6, 5, 0). // r6 = mem[10]
						St(5, 1, 6). // mem[11] = 142
						Halt()
	m := New(Config{Procs: 1, Mem: simpleMem(1)})
	if err := m.Load(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := m.Mem().MustPeek(11); got != 142 {
		t.Errorf("mem[11] = %d, want 142", got)
	}
	if res.Procs[0].Instructions != 9 {
		t.Errorf("instructions = %d, want 9", res.Procs[0].Instructions)
	}
	if res.Procs[0].StallCycles != 0 {
		t.Errorf("stalls = %d, want 0 (no barriers)", res.Procs[0].StallCycles)
	}
}

func TestPointBarrierStallsSlowerFreeRunner(t *testing.T) {
	// P0 does 5 cycles of work per iteration, P1 does 25, empty barrier
	// region: P0 must stall ~20 cycles per iteration.
	const iters = 8
	m := New(Config{Procs: 2, Mem: simpleMem(2)})
	if err := m.Load(0, loopProgram(t, 0, 2, 5, 0, iters)); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(1, loopProgram(t, 1, 2, 25, 0, iters)); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Procs[0].StallCycles < int64(iters)*15 {
		t.Errorf("P0 stalls = %d, want >= %d", res.Procs[0].StallCycles, iters*15)
	}
	if res.Procs[1].StallCycles > 5 {
		t.Errorf("P1 stalls = %d, want ~0", res.Procs[1].StallCycles)
	}
	if res.Syncs() != iters {
		t.Errorf("syncs = %d, want %d", res.Syncs(), iters)
	}
}

// alternatingLoopProgram builds a loop whose non-barrier work alternates
// between `low` and `high` cycles by iteration parity, offset by the
// processor's parity — so in every iteration one processor is fast and the
// other slow, but the roles swap each time. This is *transient* drift of
// magnitude high−low, the phenomenon the fuzzy barrier absorbs (unlike
// persistent imbalance; see TestPersistentImbalanceNotAbsorbed).
func alternatingLoopProgram(t *testing.T, self, procs int, low, high, region, iters int64) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("altloop")
	b.InNonBarrier().
		BarrierInit(1, uint64(core.AllExcept(procs, self))).
		Ldi(1, 0).             // i
		Ldi(2, iters).         // limit
		Ldi(5, 2).             // modulus
		Ldi(6, int64(self%2)). // my parity
		Br("loop")
	b.Label("loop").
		Alu(isa.MOD, 7, 1, 5). // r7 = i % 2
		CondBr(isa.BEQ, 7, 6, "slow").
		Work(low).
		Br("join")
	b.Label("slow").Work(high)
	b.Label("join")
	b.InBarrier()
	if region > 0 {
		b.Work(region)
	}
	b.Addi(1, 1, 1).CondBr(isa.BLT, 1, 2, "loop")
	b.InNonBarrier().Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := p.Validate(false); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return p
}

func TestFuzzyRegionAbsorbsTransientDrift(t *testing.T) {
	// 20 cycles of alternating drift per iteration. With an empty region
	// the early processor stalls ~20 cycles every iteration; a 30-cycle
	// region absorbs the drift almost completely.
	const iters = 8
	run := func(region int64) int64 {
		m := New(Config{Procs: 2, Mem: simpleMem(2)})
		if err := m.Load(0, alternatingLoopProgram(t, 0, 2, 5, 25, region, iters)); err != nil {
			t.Fatal(err)
		}
		if err := m.Load(1, alternatingLoopProgram(t, 1, 2, 5, 25, region, iters)); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("region=%d run: %v", region, err)
		}
		if res.Syncs() != iters {
			t.Fatalf("region=%d syncs = %d, want %d", region, res.Syncs(), iters)
		}
		return res.TotalStalls()
	}
	point := run(0)
	fuzzy := run(30)
	if point < int64(iters)*10 {
		t.Errorf("point-barrier stalls = %d, want >= %d", point, iters*10)
	}
	if fuzzy > 8 {
		t.Errorf("fuzzy-barrier stalls = %d, want <= 8", fuzzy)
	}
}

func TestPersistentImbalanceNotAbsorbed(t *testing.T) {
	// When one processor's non-barrier work is permanently larger, the
	// other stalls by the difference every iteration regardless of the
	// region size: the fuzzy barrier tolerates drift, not load imbalance
	// (which Section 1 assigns to the compiler's work distribution).
	const iters = 8
	run := func(region int64) int64 {
		m := New(Config{Procs: 2, Mem: simpleMem(2)})
		if err := m.Load(0, loopProgram(t, 0, 2, 5, region, iters)); err != nil {
			t.Fatal(err)
		}
		if err := m.Load(1, loopProgram(t, 1, 2, 25, region, iters)); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.Procs[0].StallCycles
	}
	small, large := run(0), run(30)
	perIter := int64(15)
	if small < iters*perIter || large < iters*perIter {
		t.Errorf("stalls small-region=%d large-region=%d, want both >= %d",
			small, large, iters*perIter)
	}
}

func TestBarrierOrdersMemory(t *testing.T) {
	// P0 stores 99 to mem[100] before the barrier; P1 loads mem[100]
	// after it. The load must observe the store.
	b0 := isa.NewBuilder("writer")
	b0.BarrierInit(1, uint64(core.MaskOf(1))).
		Ldi(1, 100).
		Ldi(2, 99).
		St(1, 0, 2)
	b0.InBarrier().Nop()
	b0.InNonBarrier().Halt()

	b1 := isa.NewBuilder("reader")
	b1.BarrierInit(1, uint64(core.MaskOf(0))).
		Work(3) // arrive a little later
	b1.InBarrier().Nop()
	b1.InNonBarrier().
		Ldi(1, 100).
		Ld(3, 1, 0).
		Ldi(4, 200).
		St(4, 0, 3). // mem[200] = loaded value
		Halt()

	m := New(Config{Procs: 2, Mem: simpleMem(2)})
	if err := m.Load(0, b0.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(1, b1.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := m.Mem().MustPeek(200); got != 99 {
		t.Errorf("reader observed %d, want 99", got)
	}
}

func TestInvalidBranchDeadlocks(t *testing.T) {
	// Figure 2: P0 branches directly from barrier1 into barrier2, so its
	// ready line never drops; it crosses both barriers on one sync while
	// P1 waits forever at barrier2.
	b0 := isa.NewBuilder("invalid")
	b0.BarrierInit(1, uint64(core.MaskOf(1)))
	b0.InBarrier().Nop().Br("bar2") // barrier1, jumping straight into barrier2
	b0.InNonBarrier().Work(5)       // skipped
	b0.InBarrier().Label("bar2").Nop().Nop()
	b0.InNonBarrier().Halt()
	p0 := b0.MustBuild()
	if err := p0.Validate(false); err == nil {
		t.Fatal("expected Figure-2 validation error, got nil")
	} else if !errors.Is(err, isa.ErrInvalidBranch) {
		t.Fatalf("validation error = %v, want ErrInvalidBranch", err)
	}

	b1 := isa.NewBuilder("partner")
	b1.BarrierInit(1, uint64(core.MaskOf(0)))
	b1.InBarrier().Nop() // barrier1
	b1.InNonBarrier().Work(5)
	b1.InBarrier().Nop().Nop() // barrier2
	b1.InNonBarrier().Halt()

	m := New(Config{Procs: 2, Mem: simpleMem(2), MaxCycles: 10_000})
	if err := m.Load(0, p0); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(1, b1.MustBuild()); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err == nil {
		t.Fatal("expected deadlock, run succeeded")
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	if !res.Deadlocked {
		t.Error("Result.Deadlocked = false, want true")
	}
}

func TestDisjointSubsetsSyncIndependently(t *testing.T) {
	// Processors {0,1} use tag 1, {2,3} use tag 2; the pairs must not
	// interfere even though all four share the broadcast network.
	mk := func(self, partner int, tag int64, work int64) *isa.Program {
		b := isa.NewBuilder("pair")
		b.BarrierInit(tag, uint64(core.MaskOf(partner))).
			Ldi(1, 0).Ldi(2, 5)
		b.Label("loop").Work(work)
		b.InBarrier().Addi(1, 1, 1).CondBr(isa.BLT, 1, 2, "loop")
		b.InNonBarrier().Halt()
		return b.MustBuild()
	}
	m := New(Config{Procs: 4, Mem: simpleMem(4)})
	for p, prog := range []*isa.Program{
		mk(0, 1, 1, 4), mk(1, 0, 1, 6), mk(2, 3, 2, 20), mk(3, 2, 2, 22),
	} {
		if err := m.Load(p, prog); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Pair {0,1} is much faster; if tags were ignored it would be held
	// back by pair {2,3} and accumulate large stalls.
	if res.Procs[0].HaltCycle >= res.Procs[2].HaltCycle {
		t.Errorf("fast pair halted at %d, slow pair at %d; want fast < slow",
			res.Procs[0].HaltCycle, res.Procs[2].HaltCycle)
	}
	for p := 0; p < 4; p++ {
		if res.Procs[p].Syncs != 5 {
			t.Errorf("P%d syncs = %d, want 5", p, res.Procs[p].Syncs)
		}
	}
}

func TestTagMismatchDeadlocks(t *testing.T) {
	mk := func(partner int, tag int64) *isa.Program {
		b := isa.NewBuilder("mismatch")
		b.BarrierInit(tag, uint64(core.MaskOf(partner)))
		b.InBarrier().Nop()
		b.InNonBarrier().Halt()
		return b.MustBuild()
	}
	m := New(Config{Procs: 2, Mem: simpleMem(2), MaxCycles: 10_000})
	if err := m.Load(0, mk(1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(1, mk(0, 2)); err != nil {
		t.Fatal(err)
	}
	_, err := m.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestNonParticipantIgnoresBarrierRegions(t *testing.T) {
	// Tag 0 means "not participating": barrier-region instructions run
	// without ever stalling.
	b := isa.NewBuilder("solo")
	b.BarrierInit(0, 0)
	b.InBarrier().Work(5).Nop()
	b.InNonBarrier().Halt()
	m := New(Config{Procs: 2, Mem: simpleMem(2)})
	if err := m.Load(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	// P1 left unloaded (halted).
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Procs[0].StallCycles != 0 {
		t.Errorf("stalls = %d, want 0", res.Procs[0].StallCycles)
	}
}

func TestDeterministicCycles(t *testing.T) {
	run := func() int64 {
		m := New(Config{Procs: 2, Mem: simpleMem(2)})
		if err := m.Load(0, loopProgram(t, 0, 2, 5, 10, 6)); err != nil {
			t.Fatal(err)
		}
		if err := m.Load(1, loopProgram(t, 1, 2, 9, 10, 6)); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return res.Cycles
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic: %d vs %d cycles", a, b)
	}
}

func TestWorkInstructionTiming(t *testing.T) {
	b := isa.NewBuilder("work")
	b.Work(50).Halt()
	m := New(Config{Procs: 1, Mem: simpleMem(1)})
	if err := m.Load(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Cycles < 50 || res.Cycles > 55 {
		t.Errorf("cycles = %d, want ~51", res.Cycles)
	}
}

func TestMarkerModeEquivalentToBitMode(t *testing.T) {
	// Under the marker encoding, region boundaries are instructions, so a
	// region cannot span the loop back-edge the way a bit-encoded one can;
	// the equivalent layout puts the region at the top of each iteration.
	build := func(marker bool, partner int, work int64) *isa.Program {
		var b *isa.Builder
		if marker {
			b = isa.NewMarkerBuilder("m")
		} else {
			b = isa.NewBuilder("b")
		}
		b.BarrierInit(1, uint64(core.MaskOf(partner))).Ldi(1, 0).Ldi(2, 4)
		b.Label("loop")
		b.InBarrier().Addi(1, 1, 1)
		b.InNonBarrier().Work(work).CondBr(isa.BLT, 1, 2, "loop").Halt()
		return b.MustBuild()
	}
	for _, marker := range []bool{false, true} {
		m := New(Config{Procs: 2, Mem: simpleMem(2)})
		if err := m.Load(0, build(marker, 1, 6)); err != nil {
			t.Fatal(err)
		}
		if err := m.Load(1, build(marker, 0, 9)); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("marker=%v run: %v", marker, err)
		}
		if res.Syncs() != 4 {
			t.Errorf("marker=%v syncs = %d, want 4", marker, res.Syncs())
		}
	}
}

func TestRecorderProducesGantt(t *testing.T) {
	rec := trace.NewRecorder(2)
	m := New(Config{Procs: 2, Mem: simpleMem(2), Recorder: rec})
	if err := m.Load(0, loopProgram(t, 0, 2, 3, 4, 2)); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(1, loopProgram(t, 1, 2, 8, 4, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	g := rec.Gantt()
	if g == "" {
		t.Fatal("empty gantt")
	}
	if len(rec.Events()) == 0 {
		t.Error("no events recorded")
	}
	counts := rec.LaneCounts(0)
	if counts[trace.KindStall]+counts[trace.KindBarrier]+counts[trace.KindSync] == 0 {
		t.Errorf("lane 0 recorded no barrier activity: %v", counts)
	}
}

func TestPipelineDelaysReadyLine(t *testing.T) {
	// With pipeline depth 4 the ready line rises 3 cycles after region
	// entry; two symmetric processors should still sync, just later.
	for _, depth := range []int64{1, 4} {
		m := New(Config{Procs: 2, Mem: simpleMem(2), PipelineDepth: depth})
		if err := m.Load(0, loopProgram(t, 0, 2, 5, 8, 3)); err != nil {
			t.Fatal(err)
		}
		if err := m.Load(1, loopProgram(t, 1, 2, 5, 8, 3)); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("depth=%d run: %v", depth, err)
		}
		if res.Syncs() != 3 {
			t.Errorf("depth=%d syncs = %d, want 3", depth, res.Syncs())
		}
	}
}

func TestFaultHaltsProcessor(t *testing.T) {
	b := isa.NewBuilder("fault")
	b.Ldi(1, 5).Ldi(2, 0).Alu(isa.DIV, 3, 1, 2).Halt()
	m := New(Config{Procs: 1, Mem: simpleMem(1)})
	if err := m.Load(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.Faults) != 1 {
		t.Fatalf("faults = %v, want exactly one", res.Faults)
	}
}

func TestPipelineShortRegionCannotSkipSync(t *testing.T) {
	// A 2-instruction barrier region under pipeline depth 8: the ready
	// line rises 7 cycles after region entry. The processor must NOT
	// cross before the line rises and synchronization fires — a short
	// region never silently skips a barrier.
	build := func(self, work int64) *isa.Program {
		b := isa.NewBuilder("short")
		b.BarrierInit(1, uint64(core.MaskOf(1-int(self))))
		b.Work(work)
		b.InBarrier().Nop().Nop()
		b.InNonBarrier().Halt()
		return b.MustBuild()
	}
	m := New(Config{Procs: 2, Mem: simpleMem(2), PipelineDepth: 8, MaxCycles: 10_000})
	if err := m.Load(0, build(0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(1, build(1, 40)); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for p := 0; p < 2; p++ {
		if res.Procs[p].Syncs != 1 {
			t.Errorf("P%d syncs = %d, want 1 (no skipped barrier)", p, res.Procs[p].Syncs)
		}
	}
	// The fast processor must have waited for the slow one: both halt
	// after the slow one's arrival (~cycle 40+).
	if res.Procs[0].HaltCycle < 40 {
		t.Errorf("P0 halted at %d, before P1 arrived", res.Procs[0].HaltCycle)
	}
}

// TestPhaseAttributionMatchesAggregates wires a trace.Phases into an
// unbalanced two-processor run and checks the structural invariant of
// the observability layer: per-phase cycle attribution sums to exactly
// the aggregate counters the machine already reports, for every kind.
func TestPhaseAttributionMatchesAggregates(t *testing.T) {
	const iters = 6
	ph := trace.NewPhases(2)
	m := New(Config{Procs: 2, Mem: simpleMem(2), Phases: ph})
	if err := m.Load(0, loopProgram(t, 0, 2, 5, 0, iters)); err != nil {
		t.Fatal(err)
	}
	if err := m.Load(1, loopProgram(t, 1, 2, 25, 0, iters)); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.TotalStalls() == 0 {
		t.Fatal("workload produced no stalls; test needs imbalance")
	}

	var phaseStalls int64
	for phase := 0; phase < ph.NumPhases(); phase++ {
		phaseStalls += ph.PhaseCycles(phase, trace.KindStall)
	}
	if phaseStalls != res.TotalStalls() {
		t.Errorf("per-phase stalls sum = %d, want aggregate %d", phaseStalls, res.TotalStalls())
	}
	if got := ph.KindTotal(trace.KindStall); got != res.TotalStalls() {
		t.Errorf("KindTotal(stall) = %d, want %d", got, res.TotalStalls())
	}

	var mem, work int64
	for _, p := range res.Procs {
		mem += p.MemCycles
		work += p.WorkCycles
	}
	if got := ph.KindTotal(trace.KindMemory); got != mem {
		t.Errorf("KindTotal(memory) = %d, want %d", got, mem)
	}
	if got := ph.KindTotal(trace.KindWork); got != work {
		t.Errorf("KindTotal(work) = %d, want %d", got, work)
	}

	// One phase per synchronization plus the post-sync tail (loop exit
	// and halt cycles land after the final sync).
	if got := ph.NumPhases(); got != iters+1 {
		t.Errorf("phases = %d, want %d (one per episode + tail)", got, iters+1)
	}
	// Early episodes must carry the stalls: the fast processor stalls in
	// every full episode, the tail phase has no barrier left to stall on.
	if ph.PhaseCycles(0, trace.KindStall) == 0 {
		t.Error("phase 0 shows no stalls despite 5-vs-25 imbalance")
	}
	if got := ph.PhaseCycles(iters, trace.KindStall); got != 0 {
		t.Errorf("tail phase stalls = %d, want 0", got)
	}
}

// TestPhasesAndRecorderAgree runs the same machine with both sinks and
// cross-checks them: the per-kind totals of the phase aggregator match
// the lane counts, modulo the sync/halt overwrite cycles, which the
// lanes render but the phase attribution books under the activity the
// processor actually performed.
func TestPhasesAndRecorderAgree(t *testing.T) {
	const iters = 4
	ph := trace.NewPhases(2)
	rec := trace.NewRecorder(2)
	m := New(Config{Procs: 2, Mem: simpleMem(2), Recorder: rec, Phases: ph})
	for p := 0; p < 2; p++ {
		if err := m.Load(p, loopProgram(t, p, 2, int64(5+20*p), 0, iters)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	for p := 0; p < 2; p++ {
		counts := rec.LaneCounts(p)
		var lane, attributed int64
		for k, n := range counts {
			if k == trace.KindIdle {
				continue
			}
			lane += n
		}
		for _, k := range trace.Kinds {
			for phase := 0; phase < ph.NumPhases(); phase++ {
				attributed += ph.ProcCounts(p, phase)[k.Index()]
			}
		}
		// Lane overwrites: each sync cycle and the halt cycle replace an
		// attributed mark, so the lane shows the same cycle count.
		if lane != attributed {
			t.Errorf("P%d: lane active cycles = %d, phase-attributed = %d (counts %v)", p, lane, attributed, counts)
		}
	}
}
