package machine

import (
	"strings"
	"testing"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/isa"
)

func TestCallRetBasics(t *testing.T) {
	// main: r1 = 5; CALL double; CALL double; store r1 -> 20.
	b := isa.NewBuilder("call")
	b.Ldi(1, 5).
		Call("double").
		Call("double").
		Ldi(2, 90).St(2, 0, 1).Halt()
	b.Label("double").Add(1, 1, 1).Ret()
	p := b.MustBuild()
	if err := p.Validate(false); err != nil {
		t.Fatalf("validate: %v", err)
	}
	m := New(Config{Procs: 1, Mem: simpleMem(1)})
	if err := m.Load(0, p); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem().MustPeek(90); got != 20 {
		t.Errorf("mem[90] = %d, want 20", got)
	}
}

func TestNestedCalls(t *testing.T) {
	b := isa.NewBuilder("nested")
	b.Ldi(1, 0).
		Call("outer").
		Ldi(2, 91).St(2, 0, 1).Halt()
	b.Label("outer").Addi(1, 1, 1).Call("inner").Addi(1, 1, 1).Ret()
	b.Label("inner").Addi(1, 1, 100).Ret()
	m := New(Config{Procs: 1, Mem: simpleMem(1)})
	if err := m.Load(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem().MustPeek(91); got != 102 {
		t.Errorf("mem[91] = %d, want 102", got)
	}
}

func TestRetWithoutCallFaults(t *testing.T) {
	b := isa.NewBuilder("badret")
	b.Ret().Halt()
	m := New(Config{Procs: 1, Mem: simpleMem(1)})
	if err := m.Load(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) != 1 || !strings.Contains(res.Faults[0].Error(), "empty call stack") {
		t.Errorf("faults = %v", res.Faults)
	}
}

func TestCallStackOverflowFaults(t *testing.T) {
	b := isa.NewBuilder("recurse")
	b.Label("f").Call("f") // unbounded recursion
	m := New(Config{Procs: 1, Mem: simpleMem(1), MaxCycles: 10_000})
	if err := m.Load(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Faults) != 1 || !strings.Contains(res.Faults[0].Error(), "overflow") {
		t.Errorf("faults = %v", res.Faults)
	}
}

// TestCallFromBarrierRegion captures the Section 9 semantics this
// implementation gives procedure calls from barrier regions:
//
//   - a callee compiled with barrier bits continues the caller's region
//     (one synchronization per iteration, drift still absorbed);
//   - a callee compiled as non-barrier code *splits* the region: the
//     processor must synchronize before executing the callee's first
//     instruction and raises its ready line again on return, so every
//     call inserts an extra barrier episode (consistent across identical
//     streams, but twice the synchronizations).
func TestCallFromBarrierRegion(t *testing.T) {
	build := func(self int, calleeInBarrier bool) *isa.Program {
		b := isa.NewBuilder("callreg")
		b.BarrierInit(1, uint64(core.AllExcept(2, self))).
			Ldi(1, 0).Ldi(2, 4).Br("loop")

		// The callee.
		if calleeInBarrier {
			b.InBarrier()
		} else {
			b.InNonBarrier()
		}
		b.Label("helper").Work(6).Ret()

		b.InNonBarrier().Label("loop").Work(10)
		b.InBarrier().Call("helper").Addi(1, 1, 1).CondBr(isa.BLT, 1, 2, "loop")
		b.InNonBarrier().Halt()
		return b.MustBuild()
	}
	for _, calleeInBarrier := range []bool{true, false} {
		m := New(Config{Procs: 2, Mem: simpleMem(2)})
		for p := 0; p < 2; p++ {
			if err := m.Load(p, build(p, calleeInBarrier)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("calleeInBarrier=%v: %v", calleeInBarrier, err)
		}
		want := int64(4) // one sync per iteration
		if !calleeInBarrier {
			want = 8 // region split: two syncs per iteration
		}
		if res.Syncs() != want {
			t.Errorf("calleeInBarrier=%v: syncs = %d, want %d",
				calleeInBarrier, res.Syncs(), want)
		}
	}
}

func TestVLIWIssueWidthSpeedsUpALUCode(t *testing.T) {
	// A long run of independent ALU work: width 4 should cut cycles
	// substantially; memory ops and branches still serialize.
	build := func() *isa.Program {
		b := isa.NewBuilder("vliw")
		for i := 0; i < 40; i++ {
			b.Ldi(isa.Reg(i%16+1), int64(i))
			b.Addi(isa.Reg(i%16+17), isa.Reg(i%16+1), 1)
		}
		b.Halt()
		return b.MustBuild()
	}
	run := func(width int) int64 {
		m := New(Config{Procs: 1, Mem: simpleMem(1), IssueWidth: width})
		if err := m.Load(0, build()); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	w1, w4 := run(1), run(4)
	if w4*2 > w1 {
		t.Errorf("width-4 cycles (%d) should be well under half of width-1 (%d)", w4, w1)
	}
}

func TestVLIWPreservesResultsAndBarriers(t *testing.T) {
	// The alternating-drift loop must produce identical sync counts and
	// results regardless of issue width.
	for _, width := range []int{1, 2, 4} {
		m := New(Config{Procs: 2, Mem: simpleMem(2), IssueWidth: width})
		for p := 0; p < 2; p++ {
			if err := m.Load(p, alternatingLoopProgram(t, p, 2, 5, 25, 30, 6)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("width=%d: %v", width, err)
		}
		if res.Syncs() != 6 {
			t.Errorf("width=%d: syncs = %d, want 6", width, res.Syncs())
		}
	}
}

func TestVLIWDoesNotBundleAcrossRegionBoundary(t *testing.T) {
	// Two ALU instructions with different barrier bits must take two
	// cycles even at width 8, because region entry is a semantic event.
	b := isa.NewBuilder("boundary")
	b.BarrierInit(1, 0) // no partners: sync immediate
	b.Ldi(1, 1)
	b.InBarrier().Ldi(2, 2).Ldi(3, 3)
	b.InNonBarrier().Ldi(4, 4).Halt()
	m := New(Config{Procs: 1, Mem: simpleMem(1), IssueWidth: 8})
	if err := m.Load(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	// barrier-init+ldi bundle, then the two in-region ldis, then the
	// non-barrier ldi (+halt): at least 3 issue cycles.
	if res.Cycles < 3 {
		t.Errorf("cycles = %d, want >= 3 (region boundaries split bundles)", res.Cycles)
	}
}

func TestVLIWPreservesCompiledResults(t *testing.T) {
	// Compiled Figure 9 code must compute identical array contents at
	// every issue width — multi-issue is a timing feature, never a
	// semantic one. (Compiled code lives in internal/compiler; this test
	// drives raw programs through the same widths via the drift loop and
	// checks sync counts; the compiled-value check is
	// compiler.TestFig9ComputesCorrectValues.)
	base := func(width int) (int64, int64) {
		m := New(Config{Procs: 2, Mem: simpleMem(2), IssueWidth: width})
		for p := 0; p < 2; p++ {
			if err := m.Load(p, alternatingLoopProgram(t, p, 2, 4, 20, 25, 8)); err != nil {
				t.Fatal(err)
			}
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Syncs(), res.Cycles
	}
	s1, c1 := base(1)
	s4, c4 := base(4)
	if s1 != s4 {
		t.Errorf("sync counts differ across widths: %d vs %d", s1, s4)
	}
	if c4 > c1 {
		t.Errorf("width 4 (%d cycles) should not be slower than width 1 (%d)", c4, c1)
	}
}
