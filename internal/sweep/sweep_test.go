package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := Run(workers, 20, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunZeroCells(t *testing.T) {
	out, err := Run(4, 0, func(i int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("got (%v, %v), want empty", out, err)
	}
}

func TestRunDeterministicError(t *testing.T) {
	// Whatever the interleaving, the reported error is the
	// lowest-index failure.
	errLow := errors.New("cell 3 failed")
	for trial := 0; trial < 20; trial++ {
		_, err := Run(8, 16, func(i int) (int, error) {
			if i == 3 {
				return 0, errLow
			}
			if i >= 10 {
				return 0, fmt.Errorf("cell %d failed", i)
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: err = %v, want cell 3's error", trial, err)
		}
	}
}

func TestRunAllCellsExecute(t *testing.T) {
	var ran atomic.Int64
	out, err := Run(4, 100, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 || len(out) != 100 {
		t.Fatalf("ran %d cells, want 100", ran.Load())
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if s := fmt.Sprint(r); !strings.Contains(s, "cell 5") || !strings.Contains(s, "boom") {
			t.Fatalf("panic value %q lost the cell context", s)
		}
	}()
	Run(4, 10, func(i int) (int, error) {
		if i == 5 {
			panic("boom")
		}
		return i, nil
	})
}

func TestWorkers(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Error("non-positive should select GOMAXPROCS")
	}
	if Workers(7) != 7 {
		t.Error("positive passes through")
	}
}
