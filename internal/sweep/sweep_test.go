package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunIndexOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		out, err := Run(workers, 20, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunZeroCells(t *testing.T) {
	out, err := Run(4, 0, func(i int) (int, error) { t.Fatal("called"); return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("got (%v, %v), want empty", out, err)
	}
}

func TestRunDeterministicError(t *testing.T) {
	// Whatever the interleaving, the reported error is the
	// lowest-index failure.
	errLow := errors.New("cell 3 failed")
	for trial := 0; trial < 20; trial++ {
		_, err := Run(8, 16, func(i int) (int, error) {
			if i == 3 {
				return 0, errLow
			}
			if i >= 10 {
				return 0, fmt.Errorf("cell %d failed", i)
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: err = %v, want cell 3's error", trial, err)
		}
	}
}

func TestRunAllCellsExecute(t *testing.T) {
	var ran atomic.Int64
	out, err := Run(4, 100, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 100 || len(out) != 100 {
		t.Fatalf("ran %d cells, want 100", ran.Load())
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if s := fmt.Sprint(r); !strings.Contains(s, "cell 5") || !strings.Contains(s, "boom") {
			t.Fatalf("panic value %q lost the cell context", s)
		}
	}()
	Run(4, 10, func(i int) (int, error) {
		if i == 5 {
			panic("boom")
		}
		return i, nil
	})
}

// TestRunErrorBeatsLaterPanic: failures are ranked by cell index, so a
// lower-index error outranks a higher-index panic — a serial loop would
// have stopped at the error before ever reaching the panicking cell.
func TestRunErrorBeatsLaterPanic(t *testing.T) {
	errLow := errors.New("cell 2 failed")
	for trial := 0; trial < 20; trial++ {
		_, err := Run(8, 16, func(i int) (int, error) {
			if i == 2 {
				return 0, errLow
			}
			if i == 11 {
				panic("late cell panicked after an earlier cell errored")
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("trial %d: err = %v, want cell 2's error (not the cell 11 panic)", trial, err)
		}
	}
}

// TestRunPanicBeatsLaterError: the converse ranking — a lower-index
// panic outranks a higher-index error.
func TestRunPanicBeatsLaterError(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("cell 2's panic did not propagate")
		}
		if s := fmt.Sprint(r); !strings.Contains(s, "cell 2") {
			t.Fatalf("panic value %q lost the cell context", s)
		}
	}()
	Run(8, 16, func(i int) (int, error) {
		if i == 2 {
			panic("early cell panicked")
		}
		if i == 11 {
			return 0, errors.New("late cell errored")
		}
		return i, nil
	})
}

// TestRunWorkerNormalization: Workers(0)/negative select GOMAXPROCS,
// and a workers request larger than n clamps to n — every cell still
// runs exactly once and lands at its own index.
func TestRunWorkerNormalization(t *testing.T) {
	for _, workers := range []int{0, -3, 64} {
		var ran atomic.Int64
		out, err := Run(workers, 5, func(i int) (int, error) {
			ran.Add(1)
			return i + 1, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ran.Load() != 5 {
			t.Fatalf("workers=%d: ran %d cells, want 5", workers, ran.Load())
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i+1)
			}
		}
	}
}

// TestRunSerialMatchesParallel: the workers==1 fast path and the pool
// agree on the lowest-index-failure contract.
func TestRunSerialMatchesParallel(t *testing.T) {
	errLow := errors.New("cell 1 failed")
	for _, workers := range []int{1, 8} {
		_, err := Run(workers, 4, func(i int) (int, error) {
			if i == 1 {
				return 0, errLow
			}
			return i, nil
		})
		if !errors.Is(err, errLow) {
			t.Fatalf("workers=%d: err = %v, want cell 1's error", workers, err)
		}
	}
}

func TestWorkers(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Error("non-positive should select GOMAXPROCS")
	}
	if Workers(7) != 7 {
		t.Error("positive passes through")
	}
}

// TestRunProgress pins the hook contract at both worker counts:
// serialized calls, totals always n, counts strictly 1..n, and results
// identical to a hookless Run.
func TestRunProgress(t *testing.T) {
	const n = 23
	for _, workers := range []int{1, 4} {
		var calls []int
		out, err := RunProgress(workers, n, func(done, total int) {
			if total != n {
				t.Errorf("workers=%d: progress total = %d, want %d", workers, total, n)
			}
			calls = append(calls, done) // serialized by contract; -race would catch a violation
		}, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
		if len(calls) != n {
			t.Fatalf("workers=%d: progress called %d times, want %d", workers, len(calls), n)
		}
		for i, d := range calls {
			if d != i+1 {
				t.Fatalf("workers=%d: progress counts not 1..n: %v", workers, calls)
			}
		}
	}
}
