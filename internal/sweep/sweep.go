// Package sweep is the parallel experiment-sweep engine: a worker pool
// that executes independent simulation cells — one (configuration, seed)
// point of a parameter sweep — concurrently, with deterministic,
// index-ordered aggregation.
//
// Every cell is identified by its index in [0, n); the result slice is
// indexed the same way, so the caller's aggregation (table rows, series
// for monotonicity checks) is byte-identical no matter how many workers
// ran or how the scheduler interleaved them. The cells themselves must
// be independent — each experiment builds its own machine, memory and
// RNG from an explicit per-cell seed, which is what makes the repo's
// sweeps deterministic in the first place.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count request: values <= 0 select
// GOMAXPROCS, everything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes fn(i) for every i in [0, n) on up to workers goroutines
// (Workers-normalized) and returns the results in index order.
//
// Error handling is deterministic: if any cells fail, the *lowest-index*
// failure wins (never "whichever goroutine lost the race"), exactly as a
// serial loop would surface it — if that cell errored, its error is
// returned alongside the partial result slice; if it panicked, the panic
// value propagates to the caller after all workers drain. In particular
// a high-index cell panicking does not outrank a lower-index cell's
// error: the serial loop would have stopped at the error first.
func Run[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return RunProgress(workers, n, nil, fn)
}

// RunProgress is Run with a completion hook: progress (when non-nil) is
// called after each cell finishes — success or failure — with the
// number of completed cells and the total. Calls are serialized (never
// concurrent) and counts are strictly increasing from 1 to n, so a
// caller can render a progress line without its own locking. The hook
// observes completion order, which is scheduler-dependent; only the
// counts are deterministic.
func RunProgress[T any](workers, n int, progress func(done, total int), fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n <= 0 {
		return out, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if progress != nil {
				progress(i+1, n)
			}
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	panics := make([]any, n)
	var next atomic.Int64
	var mu sync.Mutex
	done := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runCell(i, fn, out, errs, panics)
				if progress != nil {
					mu.Lock()
					done++
					progress(done, n)
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if panics[i] != nil {
			panic(fmt.Sprintf("sweep: cell %d panicked: %v", i, panics[i]))
		}
		if errs[i] != nil {
			return out, errs[i]
		}
	}
	return out, nil
}

// runCell executes one cell, converting a panic into a recorded value so
// the pool drains cleanly before re-panicking in the caller.
func runCell[T any](i int, fn func(i int) (T, error), out []T, errs []error, panics []any) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = r
		}
	}()
	out[i], errs[i] = fn(i)
}
