// Package sweep is the parallel experiment-sweep engine: a worker pool
// that executes independent simulation cells — one (configuration, seed)
// point of a parameter sweep — concurrently, with deterministic,
// index-ordered aggregation.
//
// Every cell is identified by its index in [0, n); the result slice is
// indexed the same way, so the caller's aggregation (table rows, series
// for monotonicity checks) is byte-identical no matter how many workers
// ran or how the scheduler interleaved them. The cells themselves must
// be independent — each experiment builds its own machine, memory and
// RNG from an explicit per-cell seed, which is what makes the repo's
// sweeps deterministic in the first place.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count request: values <= 0 select
// GOMAXPROCS, everything else is returned unchanged.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Run executes fn(i) for every i in [0, n) on up to workers goroutines
// (Workers-normalized) and returns the results in index order.
//
// Error handling is deterministic: if any cells fail, the *lowest-index*
// failure wins (never "whichever goroutine lost the race"), exactly as a
// serial loop would surface it — if that cell errored, its error is
// returned alongside the partial result slice; if it panicked, the panic
// value propagates to the caller after all workers drain. In particular
// a high-index cell panicking does not outrank a lower-index cell's
// error: the serial loop would have stopped at the error first.
func Run[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n <= 0 {
		return out, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	panics := make([]any, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runCell(i, fn, out, errs, panics)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if panics[i] != nil {
			panic(fmt.Sprintf("sweep: cell %d panicked: %v", i, panics[i]))
		}
		if errs[i] != nil {
			return out, errs[i]
		}
	}
	return out, nil
}

// runCell executes one cell, converting a panic into a recorded value so
// the pool drains cleanly before re-panicking in the caller.
func runCell[T any](i int, fn func(i int) (T, error), out []T, errs []error, panics []any) {
	defer func() {
		if r := recover(); r != nil {
			panics[i] = r
		}
	}()
	out[i], errs[i] = fn(i)
}
