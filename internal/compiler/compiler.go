// Package compiler is the parallelizing compiler of Section 4: it takes a
// loop nest in the paper's mini-language (internal/lang), distributes the
// parallel loops over processors, identifies the marked instructions via
// dependence analysis, constructs barrier and non-barrier regions
// (optionally applying the three-phase DAG reordering that enlarges the
// barrier regions), and generates per-processor machine code for the
// simulator with the barrier-region bit set on every barrier instruction.
package compiler

import (
	"fmt"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/ir"
	"fuzzybarrier/internal/lang"
)

// ArrayInfo places one declared array in simulated shared memory.
type ArrayInfo struct {
	Name string
	Dims []int64
	Base int64
}

// Size returns the number of words the array occupies.
func (a ArrayInfo) Size() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d
	}
	return n
}

// Layout assigns shared-memory addresses to the program's arrays.
type Layout struct {
	Arrays []ArrayInfo
	Words  int64 // total words used (arrays plus origin padding)
}

// NewLayout packs the declared arrays starting at origin.
func NewLayout(decls []lang.ArrayDecl, origin int64) *Layout {
	l := &Layout{Words: origin}
	for _, d := range decls {
		info := ArrayInfo{Name: d.Name, Dims: d.Dims, Base: l.Words}
		l.Arrays = append(l.Arrays, info)
		l.Words += info.Size()
	}
	return l
}

// Array looks up an array by name.
func (l *Layout) Array(name string) (ArrayInfo, bool) {
	for _, a := range l.Arrays {
		if a.Name == name {
			return a, true
		}
	}
	return ArrayInfo{}, false
}

// Addr returns the address of an element given its indices (row-major).
// It is used by tests and examples to initialize and inspect memory.
func (l *Layout) Addr(name string, indices ...int64) (int64, error) {
	a, ok := l.Array(name)
	if !ok {
		return 0, fmt.Errorf("compiler: unknown array %q", name)
	}
	if len(indices) != len(a.Dims) {
		return 0, fmt.Errorf("compiler: array %q rank %d, got %d indices", name, len(a.Dims), len(indices))
	}
	addr := int64(0)
	for d, idx := range indices {
		if idx < 0 || idx >= a.Dims[d] {
			return 0, fmt.Errorf("compiler: index %d out of range [0,%d) in dim %d of %q", idx, a.Dims[d], d, name)
		}
		addr = addr*a.Dims[d] + idx
	}
	return a.Base + addr, nil
}

// RegionMode selects how the non-barrier region is constructed.
type RegionMode int

const (
	// RegionSpan is Figure 4(a): the non-barrier region runs from the
	// first marked instruction to the last, with no reordering.
	RegionSpan RegionMode = iota
	// RegionReorder is Figure 4(b): the three-phase DAG scheduling moves
	// unmarked instructions out of the non-barrier region.
	RegionReorder
	// RegionPoint is the conventional-barrier baseline: the entire loop
	// body is non-barrier and the barrier region is a single null
	// operation, so synchronization happens at a point.
	RegionPoint
)

// String implements fmt.Stringer.
func (m RegionMode) String() string {
	switch m {
	case RegionSpan:
		return "span"
	case RegionReorder:
		return "reorder"
	case RegionPoint:
		return "point"
	}
	return fmt.Sprintf("RegionMode(%d)", int(m))
}

// Options configures compilation.
type Options struct {
	// Procs is the number of processors/streams to generate code for.
	Procs int
	// Mode selects region construction (default RegionSpan).
	Mode RegionMode
	// Params binds named compile-time constants referenced by the
	// program (loop bounds etc.).
	Params map[string]int64
	// Tag is the barrier tag used by the generated code (default 1).
	Tag core.Tag
	// Origin is the first shared-memory address used for arrays
	// (default 64; low words are left for diagnostics).
	Origin int64
}

func (o *Options) normalize() error {
	if o.Procs <= 0 {
		return fmt.Errorf("compiler: Procs must be positive, got %d", o.Procs)
	}
	if o.Procs > 64 {
		return fmt.Errorf("compiler: Procs must be <= 64, got %d", o.Procs)
	}
	if o.Tag == core.TagNone {
		o.Tag = 1
	}
	if o.Origin <= 0 {
		o.Origin = 64
	}
	return nil
}

// Task is the compiled output for one processor.
type Task struct {
	Proc    int
	TAC     *ir.Program
	Machine *isaProgram
	Stats   ir.RegionStats
}

// Compiled is the result of compiling a program.
type Compiled struct {
	Layout  *Layout
	Tasks   []*Task
	Marked  []string // marked access signatures (diagnostics)
	Options Options
}

// Compile compiles a program for opt.Procs processors.
//
// The program must have the paper's canonical shape: a single outermost
// sequential loop (the loop whose iterations barrier-synchronize),
// containing statements each of which is a parallel loop nest. Parallel
// iterations are distributed across processors: if the parallel iteration
// space exactly matches Procs each processor receives one iteration
// (Figure 3(b)); otherwise the outermost parallel loop is block-
// distributed (Figure 5's tasks).
func Compile(prog *lang.Program, opt Options) (*Compiled, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	if len(prog.Body) != 1 {
		return nil, fmt.Errorf("compiler: program must have exactly one top-level statement, got %d", len(prog.Body))
	}
	outer, ok := prog.Body[0].(*lang.ForStmt)
	if !ok || outer.Par {
		return nil, fmt.Errorf("compiler: top-level statement must be a sequential for loop")
	}

	layout := NewLayout(prog.Arrays, opt.Origin)
	an := analyze(prog)

	c := &Compiled{Layout: layout, Marked: an.MarkedSignatures(), Options: opt}
	for p := 0; p < opt.Procs; p++ {
		task, err := compileTask(prog, outer, layout, an, opt, p)
		if err != nil {
			return nil, fmt.Errorf("compiler: processor %d: %w", p, err)
		}
		c.Tasks = append(c.Tasks, task)
	}
	return c, nil
}

// constEval evaluates an expression that must be a compile-time constant
// under params.
func constEval(e lang.Expr, params map[string]int64) (int64, error) {
	lo := newLowerer(nil, params, nil)
	v, ok := lo.constOf(e)
	if !ok {
		return 0, fmt.Errorf("expression %v is not a compile-time constant", e)
	}
	if len(lo.errs) > 0 {
		return 0, lo.errs[0]
	}
	return v, nil
}

// tripValues enumerates the values of a loop variable with constant
// bounds.
func tripValues(f *lang.ForStmt, params map[string]int64) ([]int64, error) {
	from, err := constEval(f.From, params)
	if err != nil {
		return nil, err
	}
	to, err := constEval(f.To, params)
	if err != nil {
		return nil, err
	}
	var out []int64
	for v := from; holds(v, f.Rel, to); v += f.Step {
		out = append(out, v)
		if len(out) > 1<<20 {
			return nil, fmt.Errorf("loop over %q has more than 2^20 iterations", f.Var)
		}
	}
	return out, nil
}

func holds(a int64, rel ir.Rel, b int64) bool {
	switch rel {
	case ir.LT:
		return a < b
	case ir.LE:
		return a <= b
	case ir.GT:
		return a > b
	case ir.GE:
		return a >= b
	case ir.EQ:
		return a == b
	case ir.NE:
		return a != b
	}
	return false
}

// parNest returns the consecutive par-loop chain starting at s, plus the
// innermost body.
func parNest(s lang.Stmt) ([]*lang.ForStmt, []lang.Stmt) {
	var chain []*lang.ForStmt
	body := []lang.Stmt{s}
	for len(body) == 1 {
		f, ok := body[0].(*lang.ForStmt)
		if !ok || !f.Par {
			break
		}
		chain = append(chain, f)
		body = f.Body
	}
	return chain, body
}

// distribute rewrites one top-level statement of the sequential loop body
// into the per-processor form: either the statement with par variables
// bound to constants (point distribution) or a sequential loop over the
// processor's block of the outermost par variable.
//
// It returns the statements processor p executes and the extra parameter
// bindings for the lowerer.
func distribute(s lang.Stmt, params map[string]int64, procs, p int) ([]lang.Stmt, map[string]int64, error) {
	chain, body := parNest(s)
	if len(chain) == 0 {
		return nil, nil, fmt.Errorf("statement %T inside the sequential loop is not parallel; it would be executed redundantly by every processor", s)
	}
	// Enumerate the full parallel iteration space.
	values := make([][]int64, len(chain))
	total := 1
	for i, f := range chain {
		vs, err := tripValues(f, params)
		if err != nil {
			return nil, nil, err
		}
		if len(vs) == 0 {
			return nil, nil, fmt.Errorf("parallel loop over %q has zero iterations", f.Var)
		}
		values[i] = vs
		total *= len(vs)
	}

	if total == procs {
		// Point distribution: processor p executes exactly one coordinate
		// tuple (Figure 3(b): "Processor P_l,m").
		binds := make(map[string]int64, len(chain))
		rem := p
		for i := len(chain) - 1; i >= 0; i-- {
			vs := values[i]
			binds[chain[i].Var] = vs[rem%len(vs)]
			rem /= len(vs)
		}
		return body, binds, nil
	}

	// Block distribution of the outermost par loop (Figure 5: iterations
	// p*⌈M/S⌉+1 ... min(M, (p+1)*⌈M/S⌉)); any deeper par loops run
	// sequentially within the owning processor.
	outerVals := values[0]
	chunk := (len(outerVals) + procs - 1) / procs
	lo := p * chunk
	hi := lo + chunk
	if hi > len(outerVals) {
		hi = len(outerVals)
	}
	if lo >= hi {
		return nil, map[string]int64{}, nil // this processor owns no iterations
	}
	f := chain[0]
	inner := seqCopy(chain[1:], body)
	rewritten := &lang.ForStmt{
		Var:  f.Var,
		From: lang.NumExpr{Val: outerVals[lo]},
		Rel:  ir.LE,
		To:   lang.NumExpr{Val: outerVals[hi-1]},
		Step: f.Step,
		Body: inner,
	}
	return []lang.Stmt{rewritten}, map[string]int64{}, nil
}

// seqCopy re-wraps the remaining par chain as sequential loops around the
// body.
func seqCopy(chain []*lang.ForStmt, body []lang.Stmt) []lang.Stmt {
	if len(chain) == 0 {
		return body
	}
	f := chain[0]
	return []lang.Stmt{&lang.ForStmt{
		Var: f.Var, From: f.From, Rel: f.Rel, To: f.To, Step: f.Step,
		Body: seqCopy(chain[1:], body),
	}}
}
