package compiler

import (
	"fuzzybarrier/internal/ir"
	"fuzzybarrier/internal/isa"
)

// Section 1: "estimates of the time taken to execute different parts of a
// program are first used by the compiler to schedule approximately equal
// amounts of work on each processor between successive barrier
// synchronizations." This file provides those estimates, at both the TAC
// and machine-code levels, using the simulator's default latencies. The
// estimates are static (straight-line weights; control flow counts each
// instruction once), which is exactly the fidelity a scheduling heuristic
// needs — the drift the estimate misses is what the barrier region
// absorbs at run time.

// Default per-operation cycle weights, mirroring machine.Config defaults.
const (
	estALU  = 1
	estMul  = 3
	estDiv  = 8
	estMem  = 2 // hit-biased average of load/store latency
	estCtl  = 1
	estWork = 0 // WORK duration comes from the immediate
)

// CycleEstimate is the static cost split of a task by region kind.
type CycleEstimate struct {
	NonBarrier int64
	Barrier    int64
}

// Total returns the combined estimate.
func (e CycleEstimate) Total() int64 { return e.NonBarrier + e.Barrier }

// BarrierShare returns the fraction of estimated cycles inside barrier
// regions — the quantity the compiler maximizes when it enlarges regions.
func (e CycleEstimate) BarrierShare() float64 {
	t := e.Total()
	if t == 0 {
		return 0
	}
	return float64(e.Barrier) / float64(t)
}

// EstimateTAC computes the static cycle estimate of a TAC program.
func EstimateTAC(p *ir.Program) CycleEstimate {
	var e CycleEstimate
	add := func(barrier bool, c int64) {
		if barrier {
			e.Barrier += c
		} else {
			e.NonBarrier += c
		}
	}
	for _, in := range p.Code {
		var c int64
		switch in.Op {
		case ir.Label:
			continue
		case ir.Mul:
			c = estMul
		case ir.Div, ir.Mod:
			c = estDiv
		case ir.Load, ir.Store:
			c = estMem
		case ir.Goto, ir.IfGoto:
			c = estCtl
		default:
			c = estALU
		}
		add(in.Barrier, c)
	}
	return e
}

// EstimateMachine computes the static cycle estimate of generated machine
// code, including WORK immediates.
func EstimateMachine(p *isa.Program) CycleEstimate {
	var e CycleEstimate
	add := func(barrier bool, c int64) {
		if barrier {
			e.Barrier += c
		} else {
			e.NonBarrier += c
		}
	}
	for i, in := range p.Code {
		var c int64
		switch in.Op {
		case isa.MUL, isa.MULI:
			c = estMul
		case isa.DIV, isa.DIVI, isa.MOD:
			c = estDiv
		case isa.LD, isa.ST, isa.FAA:
			c = estMem
		case isa.WORK:
			c = in.Imm
			if c < 1 {
				c = 1
			}
		default:
			c = estALU
		}
		add(p.InBarrierRegion(i), c)
	}
	return e
}

// Estimate returns the machine-level cycle estimate for a compiled task.
func (t *Task) Estimate() CycleEstimate {
	return EstimateMachine(t.Machine)
}
