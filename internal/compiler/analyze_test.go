package compiler

import (
	"strings"
	"testing"

	"fuzzybarrier/internal/lang"
)

func TestAffineCanonicalization(t *testing.T) {
	parse := func(src string) lang.Expr {
		// Wrap in a full program to reuse the parser.
		p := lang.MustParse("int a[100][100];\nfor (q=1; q<=1; q++) do seq\n  for (w=1; w<=1; w++) do par { a[" + src + "][1] = 0; }")
		asg := p.Body[0].(*lang.ForStmt).Body[0].(*lang.ForStmt).Body[0].(*lang.AssignStmt)
		return asg.LHS.Indices[0]
	}
	cases := map[string]subscript{
		"i":     {Var: "i"},
		"i+1":   {Var: "i", Offset: 1},
		"i-2":   {Var: "i", Offset: -2},
		"3+i":   {Var: "i", Offset: 3},
		"i+1-1": {Var: "i"},
		"5":     {Offset: 5},
		"2+3":   {Offset: 5},
		"2*3":   {Offset: 6},
		"i*j":   {Opaque: true},
		"i+j":   {Opaque: true},
		"i*2":   {Opaque: true}, // scaled subscripts are out of scope
	}
	for src, want := range cases {
		got := affineOf(parse(src))
		if got != want {
			t.Errorf("affineOf(%q) = %+v, want %+v", src, got, want)
		}
	}
}

func TestSubscriptString(t *testing.T) {
	cases := map[string]subscript{
		"i":   {Var: "i"},
		"i+2": {Var: "i", Offset: 2},
		"i-3": {Var: "i", Offset: -3},
		"7":   {Offset: 7},
		"?":   {Opaque: true},
	}
	for want, s := range cases {
		if got := s.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", s, got, want)
		}
	}
}

func TestCrossProcessorCases(t *testing.T) {
	analyzeSrc := func(src string) *analysis {
		return analyze(lang.MustParse(src))
	}
	cases := []struct {
		name   string
		src    string
		marked []string
		clean  []string
	}{
		{
			name: "par displacement marks",
			src: `int a[10][10];
for (k=1; k<=4; k++) do seq
  for (p=1; p<=4; p++) do par { a[p][1] = a[p+1][1] + 1; }`,
			marked: []string{"a[p][1]:W", "a[p+1][1]:R"},
		},
		{
			name: "owned accesses stay clean",
			src: `int a[10][10];
for (k=1; k<=4; k++) do seq
  for (p=1; p<=4; p++) do par { a[p][1] = a[p][1] + 1; }`,
			clean: []string{"a[p][1]:W", "a[p][1]:R"},
		},
		{
			name: "missing par var marks (all procs share the element)",
			src: `int a[10][10];
for (k=1; k<=4; k++) do seq
  for (p=1; p<=4; p++) do par { a[1][k] = a[1][k] + p; }`,
			marked: []string{"a[1][k]:W"},
		},
		{
			name: "seq-var displacement alone stays clean",
			src: `int a[10][10];
for (k=1; k<=4; k++) do seq
  for (p=1; p<=4; p++) do par { a[p][k] = a[p][k-1] + 1; }`,
			clean: []string{"a[p][k]:W", "a[p][k-1]:R"},
		},
		{
			name: "read-only arrays never marked",
			src: `int a[10][10];
int b[10][10];
for (k=1; k<=4; k++) do seq
  for (p=1; p<=4; p++) do par { a[p][k] = b[p+1][k] + b[p-1][k]; }`,
			clean: []string{"b[p+1][k]:R", "b[p-1][k]:R"},
		},
		{
			name: "opaque subscript is conservative",
			src: `int a[100][10];
for (k=1; k<=4; k++) do seq
  for (p=1; p<=4; p++) do par { a[p*2][k] = a[p*2][k] + 1; }`,
			marked: []string{"a[?][k]:W"},
		},
		{
			name: "constant dimension mismatch stays clean",
			src: `int a[10][10];
for (k=1; k<=4; k++) do seq
  for (p=1; p<=4; p++) do par { a[p][1] = a[p][2] + 1; }`,
			clean: []string{"a[p][1]:W", "a[p][2]:R"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			an := analyzeSrc(c.src)
			for _, sig := range c.marked {
				if !an.Marked(sig) {
					t.Errorf("%s should be marked; set = %v", sig, an.MarkedSignatures())
				}
			}
			for _, sig := range c.clean {
				if an.Marked(sig) {
					t.Errorf("%s should NOT be marked; set = %v", sig, an.MarkedSignatures())
				}
			}
		})
	}
}

func TestSubstVarTransform(t *testing.T) {
	src := `int a[20][20];
for (j=1; j<=8; j++) do seq
  for (i=1; i<=4; i++) do par { a[j][i] = a[j-1][i] + j; }`
	prog := lang.MustParse(src)
	outer := prog.Body[0].(*lang.ForStmt)
	unrolled, err := UnrollSeq(outer, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if unrolled.Step != 2 {
		t.Errorf("step = %d, want 2", unrolled.Step)
	}
	if len(unrolled.Body) != 2 {
		t.Fatalf("body statements = %d, want 2", len(unrolled.Body))
	}
	// The second replica must reference j+1 in the rendered source.
	rendered := (&lang.Program{Arrays: prog.Arrays, Body: []lang.Stmt{unrolled}}).String()
	if !strings.Contains(rendered, "a[(j + 1)]") {
		t.Errorf("unrolled body missing j+1 reference:\n%s", rendered)
	}
}

func TestUnrollShadowedVariableRejected(t *testing.T) {
	src := `int a[20][20];
for (j=1; j<=8; j++) do seq
  for (i=1; i<=4; i++) do par { a[j][i] = a[j-1][i] + j; }`
	prog := lang.MustParse(src)
	outer := prog.Body[0].(*lang.ForStmt)
	// Shadow: rename inner loop var to j (illegal to unroll).
	inner := outer.Body[0].(*lang.ForStmt)
	inner.Var = "j"
	if _, err := UnrollSeq(outer, 2, nil); err == nil {
		t.Error("unrolling over a shadowed variable must fail")
	}
}

func TestUnrollWithParams(t *testing.T) {
	src := `int a[20][20];
for (j=1; j<=N; j++) do seq
  for (i=1; i<=4; i++) do par { a[j][i] = a[j-1][i] + j; }`
	prog := lang.MustParse(src)
	outer := prog.Body[0].(*lang.ForStmt)
	if _, err := UnrollSeq(outer, 2, map[string]int64{"N": 8}); err != nil {
		t.Fatalf("unroll with params: %v", err)
	}
	if _, err := UnrollSeq(outer, 2, nil); err == nil {
		t.Error("unbound N should fail constant evaluation")
	}
}
