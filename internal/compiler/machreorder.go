package compiler

import (
	"fmt"

	"fuzzybarrier/internal/isa"
)

// This file implements *post-codegen* (machine-level) region reordering —
// the weaker alternative Section 4 warns about: "After machine code has
// been generated, the opportunities for reordering are restricted due to
// dependences introduced from register or other resource usages." The E3
// ablation runs both levels on the same program and reports the
// difference.
//
// The algorithm is the same three-phase scheme as dag.ThreePhase, but the
// dependence edges come from machine registers (including the scratch
// registers the code generator recycles every few instructions) instead
// of the infinite TAC temporary space. Marked instructions are the memory
// accesses — at this level the compiler can no longer distinguish which
// loads/stores carry cross-processor dependences, another fidelity loss.

// MachineSplit is the result of machine-level reordering of one
// straight-line window.
type MachineSplit struct {
	Pre        []isa.Instr
	NonBarrier []isa.Instr
	Post       []isa.Instr
}

// Sizes returns (pre, non-barrier, post) instruction counts.
func (s MachineSplit) Sizes() (int, int, int) {
	return len(s.Pre), len(s.NonBarrier), len(s.Post)
}

// machineDeps builds dependence predecessor lists over straight-line
// machine code: flow/anti/output edges through registers, plus
// conservative memory ordering (stores and atomics conflict with
// everything; loads commute with loads).
func machineDeps(code []isa.Instr) ([][]int, [][]int, error) {
	n := len(code)
	preds := make([][]int, n)
	succs := make([][]int, n)
	seen := make(map[[2]int]bool)
	addEdge := func(from, to int) {
		if from < 0 || from == to {
			return
		}
		k := [2]int{from, to}
		if seen[k] {
			return
		}
		seen[k] = true
		preds[to] = append(preds[to], from)
		succs[from] = append(succs[from], to)
	}
	lastDef := make(map[isa.Reg]int)
	lastUses := make(map[isa.Reg][]int)
	lastStore := -1
	var loads []int
	for i, in := range code {
		if in.Op.IsBranch() || in.Op == isa.CALL || in.Op == isa.RET ||
			in.Op == isa.HALT || in.Op == isa.BARRIER ||
			in.Op == isa.BENTER || in.Op == isa.BEXIT {
			return nil, nil, fmt.Errorf("compiler: control instruction %v in machine reorder window", in.Op)
		}
		for _, u := range in.UseRegs() {
			if d, ok := lastDef[u]; ok {
				addEdge(d, i)
			}
			lastUses[u] = append(lastUses[u], i)
		}
		if in.Op == isa.LD {
			if lastStore >= 0 {
				addEdge(lastStore, i)
			}
			loads = append(loads, i)
		}
		if in.Op == isa.ST || in.Op == isa.FAA {
			if lastStore >= 0 {
				addEdge(lastStore, i)
			}
			for _, l := range loads {
				addEdge(l, i)
			}
			loads = loads[:0]
			lastStore = i
		}
		if d, ok := in.DefReg(); ok {
			if prev, ok := lastDef[d]; ok {
				addEdge(prev, i) // output dependence
			}
			for _, u := range lastUses[d] {
				addEdge(u, i) // anti dependence
			}
			lastDef[d] = i
			lastUses[d] = nil
		}
	}
	return preds, succs, nil
}

// ReorderMachineWindow applies the three-phase reordering to a
// straight-line machine-code window, treating every memory access as
// marked. It returns the split; the caller compares len(NonBarrier)
// against the intermediate-level result.
func ReorderMachineWindow(code []isa.Instr) (MachineSplit, error) {
	preds, succs, err := machineDeps(code)
	if err != nil {
		return MachineSplit{}, err
	}
	n := len(code)
	marked := make([]bool, n)
	for i, in := range code {
		marked[i] = in.TouchesMemory()
	}
	// Transitive marked-ancestor / needed-for-marked, as in dag.
	markedAnc := make([]bool, n)
	for i := 0; i < n; i++ {
		for _, p := range preds[i] {
			if marked[p] || markedAnc[p] {
				markedAnc[i] = true
				break
			}
		}
	}
	needed := make([]bool, n)
	for i := n - 1; i >= 0; i-- {
		for _, s := range succs[i] {
			if marked[s] || needed[s] {
				needed[i] = true
				break
			}
		}
	}

	scheduled := make([]bool, n)
	pending := make([]int, n)
	for i := 0; i < n; i++ {
		pending[i] = len(preds[i])
	}
	ready := func(i int) bool { return !scheduled[i] && pending[i] == 0 }
	var split MachineSplit
	schedule := func(i int, out *[]isa.Instr) {
		scheduled[i] = true
		*out = append(*out, code[i])
		for _, s := range succs[i] {
			pending[s]--
		}
	}
	// Phase 1: unmarked, no marked ancestors -> preceding barrier region.
	for {
		progress := false
		for i := 0; i < n; i++ {
			if ready(i) && !marked[i] && !markedAnc[i] {
				schedule(i, &split.Pre)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	// Phase 2: marked ASAP, pulling in what they need.
	remaining := 0
	for i := 0; i < n; i++ {
		if marked[i] && !scheduled[i] {
			remaining++
		}
	}
	for remaining > 0 {
		progress := false
		for i := 0; i < n; i++ {
			if ready(i) && marked[i] {
				schedule(i, &split.NonBarrier)
				remaining--
				progress = true
			}
		}
		if remaining == 0 {
			break
		}
		if progress {
			continue
		}
		for i := 0; i < n; i++ {
			if ready(i) && needed[i] {
				schedule(i, &split.NonBarrier)
				progress = true
				break
			}
		}
		if !progress {
			return MachineSplit{}, fmt.Errorf("compiler: machine reorder wedged with %d marked left", remaining)
		}
	}
	// Phase 3: the rest.
	for {
		progress := false
		for i := 0; i < n; i++ {
			if ready(i) {
				schedule(i, &split.Post)
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	for i := 0; i < n; i++ {
		if !scheduled[i] {
			return MachineSplit{}, fmt.Errorf("compiler: machine reorder left instruction %d unscheduled", i)
		}
	}
	return split, nil
}

// LargestNonBarrierWindow extracts the biggest straight-line run of
// non-barrier machine instructions from a compiled task — the candidate a
// post-codegen reorderer would work on.
func LargestNonBarrierWindow(p *isa.Program) []isa.Instr {
	var best, cur []isa.Instr
	flush := func() {
		if len(cur) > len(best) {
			best = cur
		}
		cur = nil
	}
	for i, in := range p.Code {
		straight := !in.Op.IsBranch() && in.Op != isa.CALL && in.Op != isa.RET &&
			in.Op != isa.HALT && in.Op != isa.BARRIER &&
			in.Op != isa.BENTER && in.Op != isa.BEXIT
		if p.InBarrierRegion(i) || !straight {
			flush()
			continue
		}
		cur = append(cur, in)
	}
	flush()
	return best
}
