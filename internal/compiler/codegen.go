package compiler

import (
	"fmt"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/ir"
	"fuzzybarrier/internal/isa"
)

// isaProgram aliases the machine-code type so compiler.Task reads well.
type isaProgram = isa.Program

// Register conventions for generated code:
//
//	r1..r3   per-instruction scratch (constant materialization)
//	r4...    named scalar variables, then TAC temporaries
//
// Temporaries are register-allocated with a simple free-list: every TAC
// temp is defined once, so a register is recycled after the temp's last
// use. Because the Section 4 reordering already happened at the
// intermediate-code level, recycling here cannot constrain it — the paper
// notes that reordering after code generation is restricted by exactly
// these register reuse dependences.
const (
	scratch0 = isa.Reg(1)
	scratch1 = isa.Reg(2)
	scratch2 = isa.Reg(3)
	firstVar = 4
)

type regAlloc struct {
	varReg   map[string]isa.Reg
	tempReg  map[int]isa.Reg
	lastUse  map[int]int // temp -> index of last use
	free     []isa.Reg
	nextFree isa.Reg
}

func newRegAlloc(p *ir.Program) (*regAlloc, error) {
	ra := &regAlloc{
		varReg:  make(map[string]isa.Reg),
		tempReg: make(map[int]isa.Reg),
		lastUse: make(map[int]int),
	}
	next := isa.Reg(firstVar)
	for _, v := range p.Vars() {
		if next >= isa.NumRegs {
			return nil, fmt.Errorf("compiler: out of registers for scalar %q", v)
		}
		ra.varReg[v] = next
		next++
	}
	ra.nextFree = next
	for i, in := range p.Code {
		for _, u := range in.Uses() {
			if u.Kind == ir.KindTemp {
				ra.lastUse[u.ID] = i
			}
		}
		// A defined-but-never-used temp dies immediately.
		if d, ok := in.Defs(); ok && d.Kind == ir.KindTemp {
			if _, seen := ra.lastUse[d.ID]; !seen {
				ra.lastUse[d.ID] = i
			}
		}
	}
	return ra, nil
}

func (ra *regAlloc) allocTemp(id int) (isa.Reg, error) {
	if r, ok := ra.tempReg[id]; ok {
		return r, nil
	}
	var r isa.Reg
	if n := len(ra.free); n > 0 {
		r = ra.free[n-1]
		ra.free = ra.free[:n-1]
	} else {
		if ra.nextFree >= isa.NumRegs {
			return 0, fmt.Errorf("compiler: register pressure too high (temp T%d)", id)
		}
		r = ra.nextFree
		ra.nextFree++
	}
	ra.tempReg[id] = r
	return r, nil
}

// releaseDead recycles registers of temps whose last use is at or before
// index i.
func (ra *regAlloc) releaseDead(i int) {
	for id, r := range ra.tempReg {
		if ra.lastUse[id] <= i {
			delete(ra.tempReg, id)
			ra.free = append(ra.free, r)
		}
	}
}

// codegen lowers a TAC program to machine code, carrying each TAC
// instruction's Barrier flag onto the emitted instructions.
func codegen(p *ir.Program, layout *Layout, opt Options, proc int) (*isa.Program, error) {
	ra, err := newRegAlloc(p)
	if err != nil {
		return nil, err
	}
	b := isa.NewBuilder(p.Name)

	constVal := func(o ir.Operand) (int64, bool) {
		switch o.Kind {
		case ir.KindConst:
			return o.Val, true
		case ir.KindBase:
			if layout == nil {
				return 0, false
			}
			a, ok := layout.Array(o.Name)
			if !ok {
				return 0, false
			}
			return a.Base, true
		}
		return 0, false
	}

	// ensure places an operand's value in a register, materializing
	// constants into the given scratch register.
	ensure := func(o ir.Operand, scratch isa.Reg) (isa.Reg, error) {
		switch o.Kind {
		case ir.KindTemp:
			r, ok := ra.tempReg[o.ID]
			if !ok {
				return 0, fmt.Errorf("compiler: use of undefined temp T%d", o.ID)
			}
			return r, nil
		case ir.KindVar:
			r, ok := ra.varReg[o.Name]
			if !ok {
				return 0, fmt.Errorf("compiler: use of unknown scalar %q", o.Name)
			}
			return r, nil
		case ir.KindConst, ir.KindBase:
			v, ok := constVal(o)
			if !ok {
				return 0, fmt.Errorf("compiler: unresolvable operand %v", o)
			}
			b.Ldi(scratch, v)
			return scratch, nil
		}
		return 0, fmt.Errorf("compiler: empty operand")
	}

	dest := func(o ir.Operand) (isa.Reg, error) {
		switch o.Kind {
		case ir.KindTemp:
			return ra.allocTemp(o.ID)
		case ir.KindVar:
			r, ok := ra.varReg[o.Name]
			if !ok {
				return 0, fmt.Errorf("compiler: assignment to unknown scalar %q", o.Name)
			}
			return r, nil
		}
		return 0, fmt.Errorf("compiler: bad destination %v", o)
	}

	arithOp := map[ir.Op]isa.Op{
		ir.Add: isa.ADD, ir.Sub: isa.SUB, ir.Mul: isa.MUL, ir.Div: isa.DIV, ir.Mod: isa.MOD,
	}
	arithOpI := map[ir.Op]isa.Op{
		ir.Add: isa.ADDI, ir.Sub: isa.SUBI, ir.Mul: isa.MULI, ir.Div: isa.DIVI,
	}
	relOp := map[ir.Rel]isa.Op{
		ir.LT: isa.BLT, ir.LE: isa.BLE, ir.GT: isa.BGT,
		ir.GE: isa.BGE, ir.EQ: isa.BEQ, ir.NE: isa.BNE,
	}

	// Prologue: the single barrier-initialization instruction.
	b.InNonBarrier()
	b.BarrierInit(int64(opt.Tag), uint64(core.AllExcept(opt.Procs, proc)))
	b.Comment("init barrier: tag=%d", opt.Tag)

	for i, in := range p.Code {
		if in.Barrier {
			b.InBarrier()
		} else {
			b.InNonBarrier()
		}
		switch in.Op {
		case ir.Nop:
			b.Nop()
		case ir.Label:
			b.Label(in.Target)
		case ir.Goto:
			b.Br(in.Target)
		case ir.IfGoto:
			rs, err := ensure(in.A, scratch0)
			if err != nil {
				return nil, err
			}
			rt, err := ensure(in.B, scratch1)
			if err != nil {
				return nil, err
			}
			b.CondBr(relOp[in.Rel], rs, rt, in.Target)
		case ir.Assign:
			rd, err := dest(in.Dst)
			if err != nil {
				return nil, err
			}
			if v, ok := constVal(in.A); ok {
				b.Ldi(rd, v)
			} else {
				rs, err := ensure(in.A, scratch0)
				if err != nil {
					return nil, err
				}
				b.Mov(rd, rs)
			}
		case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Mod:
			rd, err := dest(in.Dst)
			if err != nil {
				return nil, err
			}
			vB, bConst := constVal(in.B)
			vA, aConst := constVal(in.A)
			immOp, hasImm := arithOpI[in.Op]
			switch {
			case bConst && !aConst && hasImm:
				rs, err := ensure(in.A, scratch0)
				if err != nil {
					return nil, err
				}
				b.AluI(immOp, rd, rs, vB)
			case aConst && !bConst && hasImm && (in.Op == ir.Add || in.Op == ir.Mul):
				rs, err := ensure(in.B, scratch0)
				if err != nil {
					return nil, err
				}
				b.AluI(immOp, rd, rs, vA)
			default:
				rs, err := ensure(in.A, scratch0)
				if err != nil {
					return nil, err
				}
				rt, err := ensure(in.B, scratch1)
				if err != nil {
					return nil, err
				}
				b.Alu(arithOp[in.Op], rd, rs, rt)
			}
		case ir.Load:
			ra_, err := ensure(in.A, scratch0)
			if err != nil {
				return nil, err
			}
			rd, err := dest(in.Dst)
			if err != nil {
				return nil, err
			}
			b.Ld(rd, ra_, 0)
		case ir.Store:
			raddr, err := ensure(in.Dst, scratch0)
			if err != nil {
				return nil, err
			}
			rval, err := ensure(in.B, scratch1)
			if err != nil {
				return nil, err
			}
			b.St(raddr, 0, rval)
		default:
			return nil, fmt.Errorf("compiler: cannot generate code for %v", in)
		}
		if in.Comment != "" {
			b.Comment("%s", in.Comment)
		}
		ra.releaseDead(i)
	}
	b.InNonBarrier()
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return prog, nil
}
