package compiler

import (
	"fmt"
	"sort"

	"fuzzybarrier/internal/ir"
	"fuzzybarrier/internal/lang"
)

// This file implements the dependence analysis that identifies *marked*
// instructions (Section 4): "those instructions which either access a
// value computed by another processor or compute a value that will be
// accessed by another processor". An array access is marked when it
// participates in a data dependence that can cross processors under the
// chosen work distribution; barrier synchronization exists to order
// exactly those accesses.

// varKind classifies a loop variable in the analysis context.
type varKind int

const (
	kindFree varKind = iota // not a loop variable (parameter, unknown)
	kindSeq                 // sequential loop variable (outer barrier loop or inner seq)
	kindPar                 // parallel loop variable: identifies the owning processor
)

// subscript is one dimension of an array access in canonical affine form
// var+offset; Opaque subscripts disable precise reasoning.
type subscript struct {
	Var    string // "" for pure constants
	Offset int64
	Opaque bool
}

func (s subscript) String() string {
	if s.Opaque {
		return "?"
	}
	if s.Var == "" {
		return fmt.Sprint(s.Offset)
	}
	if s.Offset == 0 {
		return s.Var
	}
	if s.Offset > 0 {
		return fmt.Sprintf("%s+%d", s.Var, s.Offset)
	}
	return fmt.Sprintf("%s%d", s.Var, s.Offset)
}

// access is one array read or write site, identified by its signature.
type access struct {
	Array string
	Subs  []subscript
	Write bool
}

// Signature is the canonical identity of an access pattern; lowering uses
// it to tag the Load/Store instructions it emits.
func (a access) Signature() string {
	s := a.Array
	for _, sub := range a.Subs {
		s += "[" + sub.String() + "]"
	}
	if a.Write {
		return s + ":W"
	}
	return s + ":R"
}

// analysis is the result of dependence analysis over a program.
type analysis struct {
	accesses []access
	varKinds map[string]varKind
	parVars  []string        // all par-loop variables, in nesting order
	marked   map[string]bool // signatures of marked accesses
}

// affineOf canonicalizes an index expression to var+offset if possible.
func affineOf(e lang.Expr) subscript {
	switch x := e.(type) {
	case lang.NumExpr:
		return subscript{Offset: x.Val}
	case lang.VarExpr:
		return subscript{Var: x.Name}
	case lang.BinExpr:
		l := affineOf(x.L)
		r := affineOf(x.R)
		if l.Opaque || r.Opaque {
			return subscript{Opaque: true}
		}
		switch x.Op {
		case ir.Add:
			switch {
			case l.Var != "" && r.Var == "":
				return subscript{Var: l.Var, Offset: l.Offset + r.Offset}
			case l.Var == "" && r.Var != "":
				return subscript{Var: r.Var, Offset: l.Offset + r.Offset}
			case l.Var == "" && r.Var == "":
				return subscript{Offset: l.Offset + r.Offset}
			}
		case ir.Sub:
			if r.Var == "" {
				if l.Var != "" {
					return subscript{Var: l.Var, Offset: l.Offset - r.Offset}
				}
				return subscript{Offset: l.Offset - r.Offset}
			}
		case ir.Mul:
			if l.Var == "" && r.Var == "" {
				return subscript{Offset: l.Offset * r.Offset}
			}
		}
	}
	return subscript{Opaque: true}
}

// analyze walks the program, classifies loop variables, collects array
// accesses and computes the marked set.
func analyze(prog *lang.Program) *analysis {
	a := &analysis{
		varKinds: make(map[string]varKind),
		marked:   make(map[string]bool),
	}
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch x := e.(type) {
		case lang.BinExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case lang.IndexExpr:
			acc := access{Array: x.Name}
			for _, idx := range x.Indices {
				acc.Subs = append(acc.Subs, affineOf(idx))
				walkExpr(idx)
			}
			a.accesses = append(a.accesses, acc)
		}
	}
	var walkStmts func(ss []lang.Stmt)
	walkStmts = func(ss []lang.Stmt) {
		for _, s := range ss {
			switch x := s.(type) {
			case *lang.AssignStmt:
				walkExpr(x.RHS)
				if len(x.LHS.Indices) > 0 {
					acc := access{Array: x.LHS.Name, Write: true}
					for _, idx := range x.LHS.Indices {
						acc.Subs = append(acc.Subs, affineOf(idx))
						walkExpr(idx)
					}
					a.accesses = append(a.accesses, acc)
				}
			case *lang.IfStmt:
				walkExpr(x.Cond.L)
				walkExpr(x.Cond.R)
				walkStmts(x.Then)
				walkStmts(x.Else)
			case *lang.ForStmt:
				if x.Par {
					a.varKinds[x.Var] = kindPar
					a.parVars = append(a.parVars, x.Var)
				} else if _, seen := a.varKinds[x.Var]; !seen {
					a.varKinds[x.Var] = kindSeq
				}
				walkExpr(x.From)
				walkExpr(x.To)
				walkStmts(x.Body)
			}
		}
	}
	walkStmts(prog.Body)
	a.computeMarked()
	return a
}

// crossProcessor decides whether a dependence between write w and access r
// (same array) can connect two *different* processors. Each processor owns
// a distinct combination of par-variable values, so the question is
// whether the subscript systems admit a solution in which some par
// variable differs between the two accesses.
func (a *analysis) crossProcessor(w, r access) bool {
	if len(w.Subs) != len(r.Subs) {
		return true // malformed; be conservative
	}
	constrained := make(map[string]int64) // par var -> forced displacement
	conservative := false
	for d := range w.Subs {
		ws, rs := w.Subs[d], r.Subs[d]
		if ws.Opaque || rs.Opaque {
			conservative = true
			continue
		}
		switch {
		case ws.Var == "" && rs.Var == "":
			if ws.Offset != rs.Offset {
				return false // can never alias
			}
		case ws.Var == rs.Var:
			switch a.varKinds[ws.Var] {
			case kindPar:
				delta := ws.Offset - rs.Offset
				if prev, ok := constrained[ws.Var]; ok && prev != delta {
					return false // inconsistent requirements: no alias
				}
				constrained[ws.Var] = delta
			default:
				// Sequential or free variable: a suitable iteration (or
				// value) always exists; no processor constraint.
			}
		default:
			// Mixed variables or variable vs. constant: if a par variable
			// is involved its value is pinned rather than tied to the
			// other processor's, which permits differing processors.
			if a.varKinds[ws.Var] == kindPar || a.varKinds[rs.Var] == kindPar {
				conservative = true
			}
			// Otherwise sequential/free: solvable, unconstrained.
		}
	}
	if conservative {
		return true
	}
	// Any nonzero displacement in a par dimension crosses an ownership
	// boundary for some iteration pair.
	for _, delta := range constrained {
		if delta != 0 {
			return true
		}
	}
	// A par variable absent from the constraints means two processors
	// differing in that variable can both touch the same element.
	for _, pv := range a.parVars {
		if _, ok := constrained[pv]; !ok {
			return true
		}
	}
	return false
}

// computeMarked marks every access that participates in a cross-processor
// dependence with some write.
func (a *analysis) computeMarked() {
	for _, w := range a.accesses {
		if !w.Write {
			continue
		}
		for _, r := range a.accesses {
			if r.Array != w.Array {
				continue
			}
			if !r.Write && !w.Write {
				continue // read-read pairs carry no dependence
			}
			if a.crossProcessor(w, r) {
				a.marked[w.Signature()] = true
				a.marked[r.Signature()] = true
			}
		}
	}
}

// Marked reports whether an access signature is marked.
func (a *analysis) Marked(sig string) bool { return a.marked[sig] }

// MarkedSignatures returns the sorted marked set (for diagnostics).
func (a *analysis) MarkedSignatures() []string {
	out := make([]string, 0, len(a.marked))
	for s := range a.marked {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
