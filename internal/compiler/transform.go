package compiler

import (
	"fmt"

	"fuzzybarrier/internal/ir"
	"fuzzybarrier/internal/lang"
)

// This file implements the statement-level transformations the paper uses
// to enlarge barrier regions:
//
//   - loop distribution (Section 4, Figure 5): a loop with several
//     statements is divided into multiple loops so that statements not
//     involved in cross-processor dependences form whole loops that can
//     live inside the barrier region;
//
//   - loop unrolling (Sections 7.2 and 7.3, Figures 9-11): unrolling the
//     sequential loop exposes one barrier per original iteration
//     (enforcing lexically forward dependences, Figure 10) and makes
//     iteration counts divisible by the processor count (Figure 11).

// DistributeLoop applies loop distribution to a loop whose body is a list
// of assignment statements: it returns one loop per statement, in original
// order. Distribution is legal when no statement depends backward on a
// later statement through an array; the check here is array-granular and
// conservative.
func DistributeLoop(f *lang.ForStmt) ([]*lang.ForStmt, error) {
	if len(f.Body) < 2 {
		return nil, fmt.Errorf("compiler: loop body has %d statements; nothing to distribute", len(f.Body))
	}
	reads := make([]map[string]bool, len(f.Body))
	writes := make([]map[string]bool, len(f.Body))
	for i, s := range f.Body {
		r, w, err := arraySets(s)
		if err != nil {
			return nil, err
		}
		reads[i], writes[i] = r, w
	}
	// A backward dependence (statement i touching an array a later
	// statement writes) would be reversed by distribution.
	for i := range f.Body {
		for j := i + 1; j < len(f.Body); j++ {
			for arr := range writes[j] {
				if reads[i][arr] || writes[i][arr] {
					return nil, fmt.Errorf("compiler: distribution illegal: statement %d accesses array %q written by later statement %d", i, arr, j)
				}
			}
		}
	}
	out := make([]*lang.ForStmt, len(f.Body))
	for i, s := range f.Body {
		out[i] = &lang.ForStmt{
			Var: f.Var, From: f.From, Rel: f.Rel, To: f.To, Step: f.Step, Par: f.Par,
			Body: []lang.Stmt{s},
		}
	}
	return out, nil
}

// arraySets collects the arrays a statement reads and writes.
func arraySets(s lang.Stmt) (reads, writes map[string]bool, err error) {
	reads = make(map[string]bool)
	writes = make(map[string]bool)
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch x := e.(type) {
		case lang.BinExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case lang.IndexExpr:
			reads[x.Name] = true
			for _, idx := range x.Indices {
				walkExpr(idx)
			}
		}
	}
	var walk func(st lang.Stmt) error
	walk = func(st lang.Stmt) error {
		switch x := st.(type) {
		case *lang.AssignStmt:
			walkExpr(x.RHS)
			if len(x.LHS.Indices) > 0 {
				writes[x.LHS.Name] = true
				for _, idx := range x.LHS.Indices {
					walkExpr(idx)
				}
			}
		case *lang.IfStmt:
			walkExpr(x.Cond.L)
			walkExpr(x.Cond.R)
			for _, t := range append(append([]lang.Stmt{}, x.Then...), x.Else...) {
				if err := walk(t); err != nil {
					return err
				}
			}
		case *lang.ForStmt:
			for _, t := range x.Body {
				if err := walk(t); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("compiler: unsupported statement %T in distribution analysis", st)
		}
		return nil
	}
	if err := walk(s); err != nil {
		return nil, nil, err
	}
	return reads, writes, nil
}

// substVar replaces every reference to variable v in an expression with
// v+delta.
func substVar(e lang.Expr, v string, delta int64) lang.Expr {
	switch x := e.(type) {
	case lang.VarExpr:
		if x.Name == v {
			if delta == 0 {
				return x
			}
			return lang.BinExpr{Op: ir.Add, L: x, R: lang.NumExpr{Val: delta}}
		}
		return x
	case lang.BinExpr:
		return lang.BinExpr{Op: x.Op, L: substVar(x.L, v, delta), R: substVar(x.R, v, delta)}
	case lang.IndexExpr:
		out := lang.IndexExpr{Name: x.Name, Indices: make([]lang.Expr, len(x.Indices))}
		for i, idx := range x.Indices {
			out.Indices[i] = substVar(idx, v, delta)
		}
		return out
	default:
		return e
	}
}

// substStmt rewrites a statement with v replaced by v+delta.
func substStmt(s lang.Stmt, v string, delta int64) (lang.Stmt, error) {
	switch x := s.(type) {
	case *lang.AssignStmt:
		lhs := lang.LValue{Name: x.LHS.Name, Indices: make([]lang.Expr, len(x.LHS.Indices))}
		for i, idx := range x.LHS.Indices {
			lhs.Indices[i] = substVar(idx, v, delta)
		}
		return &lang.AssignStmt{LHS: lhs, RHS: substVar(x.RHS, v, delta)}, nil
	case *lang.IfStmt:
		out := &lang.IfStmt{Cond: lang.CondExpr{
			L: substVar(x.Cond.L, v, delta), Rel: x.Cond.Rel, R: substVar(x.Cond.R, v, delta),
		}}
		for _, t := range x.Then {
			st, err := substStmt(t, v, delta)
			if err != nil {
				return nil, err
			}
			out.Then = append(out.Then, st)
		}
		for _, t := range x.Else {
			st, err := substStmt(t, v, delta)
			if err != nil {
				return nil, err
			}
			out.Else = append(out.Else, st)
		}
		return out, nil
	case *lang.ForStmt:
		if x.Var == v {
			return nil, fmt.Errorf("compiler: inner loop shadows unrolled variable %q", v)
		}
		out := &lang.ForStmt{
			Var: x.Var, From: substVar(x.From, v, delta), Rel: x.Rel,
			To: substVar(x.To, v, delta), Step: x.Step, Par: x.Par,
		}
		for _, t := range x.Body {
			st, err := substStmt(t, v, delta)
			if err != nil {
				return nil, err
			}
			out.Body = append(out.Body, st)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("compiler: unsupported statement %T in unrolling", s)
	}
}

// UnrollSeq unrolls a sequential loop by the given factor: the body is
// replicated with the loop variable offset by 0, step, 2·step, ... and the
// loop step multiplied by the factor. The trip count (which must be a
// compile-time constant under params) must be divisible by the factor.
func UnrollSeq(f *lang.ForStmt, factor int, params map[string]int64) (*lang.ForStmt, error) {
	if f.Par {
		return nil, fmt.Errorf("compiler: UnrollSeq on parallel loop over %q", f.Var)
	}
	if factor < 2 {
		return nil, fmt.Errorf("compiler: unroll factor %d < 2", factor)
	}
	trips, err := tripValues(f, params)
	if err != nil {
		return nil, err
	}
	if len(trips)%factor != 0 {
		return nil, fmt.Errorf("compiler: trip count %d not divisible by unroll factor %d", len(trips), factor)
	}
	out := &lang.ForStmt{
		Var: f.Var, From: f.From, Rel: f.Rel, To: f.To,
		Step: f.Step * int64(factor), Par: false,
	}
	for u := 0; u < factor; u++ {
		delta := int64(u) * f.Step
		for _, s := range f.Body {
			st, err := substStmt(s, f.Var, delta)
			if err != nil {
				return nil, err
			}
			out.Body = append(out.Body, st)
		}
	}
	return out, nil
}
