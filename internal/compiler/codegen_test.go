package compiler

import (
	"strings"
	"testing"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/ir"
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/lang"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/mem"
)

// codegenHarness compiles a hand-built TAC program and runs it on one
// simulated processor.
func codegenHarness(t *testing.T, code []ir.Instr, layout *Layout) *machine.Machine {
	t.Helper()
	tac := &ir.Program{Name: "cg", Code: code}
	prog, err := codegen(tac, layout, Options{Procs: 1, Tag: 1, Origin: 64}, 0)
	if err != nil {
		t.Fatalf("codegen: %v", err)
	}
	words := 256
	if layout != nil {
		words = int(layout.Words) + 64
	}
	m := machine.New(machine.Config{Procs: 1, Mem: mem.Config{
		Words: words, Procs: 1, HitLatency: 1, MissLatency: 1, Modules: 1,
	}})
	if err := m.Load(0, prog); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("run: %v\n%s", err, prog.Disassemble())
	}
	return m
}

func TestCodegenArithmeticAndStores(t *testing.T) {
	layout := NewLayout([]lang.ArrayDecl{{Name: "A", Dims: []int64{8}}}, 64)
	T := ir.Temp
	// A[3] = (5*4 + 2 - 6/3) % 7  ->  (20+2-2)%7 = 20%7 = 6
	code := []ir.Instr{
		{Op: ir.Mul, Dst: T(0), A: ir.Const(5), B: ir.Const(4)},
		{Op: ir.Add, Dst: T(1), A: T(0), B: ir.Const(2)},
		{Op: ir.Div, Dst: T(2), A: ir.Const(6), B: ir.Const(3)},
		{Op: ir.Sub, Dst: T(3), A: T(1), B: T(2)},
		{Op: ir.Mod, Dst: T(4), A: T(3), B: ir.Const(7)},
		{Op: ir.Add, Dst: T(5), A: ir.Const(3), B: ir.Base("A")},
		{Op: ir.Store, Dst: T(5), B: T(4)},
	}
	m := codegenHarness(t, code, layout)
	addr, err := layout.Addr("A", 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Mem().MustPeek(addr); got != 6 {
		t.Errorf("A[3] = %d, want 6", got)
	}
}

func TestCodegenLoadStoreRoundTrip(t *testing.T) {
	layout := NewLayout([]lang.ArrayDecl{{Name: "A", Dims: []int64{4}}}, 64)
	T := ir.Temp
	code := []ir.Instr{
		{Op: ir.Add, Dst: T(0), A: ir.Const(0), B: ir.Base("A")},
		{Op: ir.Store, Dst: T(0), B: ir.Const(41)},
		{Op: ir.Load, Dst: T(1), A: T(0)},
		{Op: ir.Add, Dst: T(2), A: T(1), B: ir.Const(1)},
		{Op: ir.Add, Dst: T(3), A: ir.Const(1), B: ir.Base("A")},
		{Op: ir.Store, Dst: T(3), B: T(2)},
	}
	m := codegenHarness(t, code, layout)
	a1, _ := layout.Addr("A", 1)
	if got := m.Mem().MustPeek(a1); got != 42 {
		t.Errorf("A[1] = %d, want 42", got)
	}
}

func TestCodegenControlFlow(t *testing.T) {
	layout := NewLayout([]lang.ArrayDecl{{Name: "A", Dims: []int64{4}}}, 64)
	// sum = 0; for v = 1..5 { sum += v }; A[0] = sum  -> 15
	code := []ir.Instr{
		{Op: ir.Assign, Dst: ir.Var("sum"), A: ir.Const(0)},
		{Op: ir.Assign, Dst: ir.Var("v"), A: ir.Const(1)},
		{Op: ir.Label, Target: "top"},
		{Op: ir.IfGoto, A: ir.Var("v"), B: ir.Const(5), Rel: ir.GT, Target: "done"},
		{Op: ir.Add, Dst: ir.Var("sum"), A: ir.Var("sum"), B: ir.Var("v")},
		{Op: ir.Add, Dst: ir.Var("v"), A: ir.Var("v"), B: ir.Const(1)},
		{Op: ir.Goto, Target: "top"},
		{Op: ir.Label, Target: "done"},
		{Op: ir.Add, Dst: ir.Temp(0), A: ir.Const(0), B: ir.Base("A")},
		{Op: ir.Store, Dst: ir.Temp(0), B: ir.Var("sum")},
	}
	m := codegenHarness(t, code, layout)
	a0, _ := layout.Addr("A", 0)
	if got := m.Mem().MustPeek(a0); got != 15 {
		t.Errorf("A[0] = %d, want 15", got)
	}
}

func TestCodegenBarrierBitsCarriedThrough(t *testing.T) {
	code := []ir.Instr{
		{Op: ir.Assign, Dst: ir.Var("x"), A: ir.Const(1)},                             // non-barrier
		{Op: ir.Add, Dst: ir.Var("x"), A: ir.Var("x"), B: ir.Const(1), Barrier: true}, // barrier
		{Op: ir.Nop, Barrier: true},
	}
	tac := &ir.Program{Name: "bits", Code: code}
	prog, err := codegen(tac, nil, Options{Procs: 2, Tag: 3, Origin: 64}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Prologue BARRIER instruction: non-barrier, tag 3, mask = {0}.
	if prog.Code[0].Op != isa.BARRIER || prog.Code[0].Imm != 3 {
		t.Errorf("prologue = %v", prog.Code[0])
	}
	if core.Mask(prog.Code[0].Imm2) != core.MaskOf(0) {
		t.Errorf("mask = %#x, want processor 0 only", prog.Code[0].Imm2)
	}
	// Find the generated ADD: it must carry the barrier bit.
	seenBarrierAdd := false
	for _, in := range prog.Code {
		if in.Op == isa.ADDI && in.Barrier {
			seenBarrierAdd = true
		}
	}
	if !seenBarrierAdd {
		t.Errorf("barrier bit lost in codegen:\n%s", prog.Disassemble())
	}
	// Final instruction is a non-barrier HALT.
	last := prog.Code[prog.Len()-1]
	if last.Op != isa.HALT || last.Barrier {
		t.Errorf("epilogue = %v", last)
	}
}

func TestCodegenRegisterRecycling(t *testing.T) {
	// 200 short-lived temps must fit in the register file via recycling.
	var code []ir.Instr
	code = append(code, ir.Instr{Op: ir.Assign, Dst: ir.Var("acc"), A: ir.Const(0)})
	for i := 0; i < 200; i++ {
		code = append(code,
			ir.Instr{Op: ir.Add, Dst: ir.Temp(i), A: ir.Var("acc"), B: ir.Const(1)},
			ir.Instr{Op: ir.Assign, Dst: ir.Var("acc"), A: ir.Temp(i)},
		)
	}
	layout := NewLayout([]lang.ArrayDecl{{Name: "A", Dims: []int64{4}}}, 64)
	code = append(code,
		ir.Instr{Op: ir.Add, Dst: ir.Temp(999), A: ir.Const(0), B: ir.Base("A")},
		ir.Instr{Op: ir.Store, Dst: ir.Temp(999), B: ir.Var("acc")},
	)
	m := codegenHarness(t, code, layout)
	a0, _ := layout.Addr("A", 0)
	if got := m.Mem().MustPeek(a0); got != 200 {
		t.Errorf("acc = %d, want 200", got)
	}
}

func TestCodegenRegisterPressureOverflow(t *testing.T) {
	// Temps all simultaneously live must exhaust the register file and
	// produce a clean error (no spilling is implemented, by design).
	var code []ir.Instr
	n := int(isa.NumRegs) + 8
	for i := 0; i < n; i++ {
		code = append(code, ir.Instr{Op: ir.Assign, Dst: ir.Temp(i), A: ir.Const(int64(i))})
	}
	// One instruction using all of them pairwise keeps them live.
	for i := 1; i < n; i++ {
		code = append(code, ir.Instr{Op: ir.Add, Dst: ir.Temp(n + i), A: ir.Temp(i - 1), B: ir.Temp(n - i)})
	}
	tac := &ir.Program{Name: "pressure", Code: code}
	if _, err := codegen(tac, nil, Options{Procs: 1, Tag: 1, Origin: 64}, 0); err == nil {
		t.Skip("register pressure did not overflow (recycling handled it)")
	}
}

func TestCodegenErrors(t *testing.T) {
	cases := map[string][]ir.Instr{
		"undefined temp use": {{Op: ir.Add, Dst: ir.Temp(0), A: ir.Temp(5), B: ir.Const(1)}},
		"unknown base":       {{Op: ir.Add, Dst: ir.Temp(0), A: ir.Const(1), B: ir.Base("NOPE")}},
		"store to const":     {{Op: ir.Store, Dst: ir.Operand{}, B: ir.Const(1)}},
	}
	for name, code := range cases {
		tac := &ir.Program{Name: name, Code: code}
		if _, err := codegen(tac, nil, Options{Procs: 1, Tag: 1, Origin: 64}, 0); err == nil {
			t.Errorf("%s: expected codegen error", name)
		}
	}
}

func TestLayoutAddressing(t *testing.T) {
	l := NewLayout([]lang.ArrayDecl{
		{Name: "A", Dims: []int64{2, 3}},
		{Name: "B", Dims: []int64{4}},
	}, 100)
	if a, _ := l.Addr("A", 0, 0); a != 100 {
		t.Errorf("A[0][0] = %d, want 100", a)
	}
	if a, _ := l.Addr("A", 1, 2); a != 105 {
		t.Errorf("A[1][2] = %d, want 105", a)
	}
	if a, _ := l.Addr("B", 0); a != 106 {
		t.Errorf("B[0] = %d, want 106", a)
	}
	if l.Words != 110 {
		t.Errorf("words = %d, want 110", l.Words)
	}
	if _, err := l.Addr("A", 2, 0); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := l.Addr("A", 1); err == nil {
		t.Error("rank mismatch accepted")
	}
	if _, err := l.Addr("Z", 0); err == nil {
		t.Error("unknown array accepted")
	}
}

func TestTaskAsmTextRoundTrips(t *testing.T) {
	// Compiled tasks must survive AsmText -> Assemble (the fuzzcc -emit
	// pipeline).
	prog := lang.MustParse(poissonSrc)
	c, err := Compile(prog, Options{Procs: 4, Mode: RegionReorder})
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range c.Tasks {
		text := task.Machine.AsmText()
		p2, err := isa.Assemble(text)
		if err != nil {
			t.Fatalf("P%d re-assemble: %v", task.Proc, err)
		}
		if p2.Len() != task.Machine.Len() {
			t.Errorf("P%d: %d instrs after round trip, want %d", task.Proc, p2.Len(), task.Machine.Len())
		}
		if !strings.Contains(text, ".barrier") {
			t.Errorf("P%d: emitted text has no barrier regions", task.Proc)
		}
	}
}

func TestCycleEstimates(t *testing.T) {
	prog := lang.MustParse(poissonSrc)
	span, err := Compile(prog, Options{Procs: 4, Mode: RegionSpan})
	if err != nil {
		t.Fatal(err)
	}
	reorder, err := Compile(prog, Options{Procs: 4, Mode: RegionReorder})
	if err != nil {
		t.Fatal(err)
	}
	eSpan := EstimateTAC(span.Tasks[0].TAC)
	eReorder := EstimateTAC(reorder.Tasks[0].TAC)
	// Total estimated work is mode-independent (reordering moves, never
	// adds, instructions).
	if eSpan.Total() != eReorder.Total() {
		t.Errorf("totals differ: span=%d reorder=%d", eSpan.Total(), eReorder.Total())
	}
	// Reordering raises the barrier share — the compiler's objective.
	if eReorder.BarrierShare() <= eSpan.BarrierShare() {
		t.Errorf("barrier share: span=%.2f reorder=%.2f, want reorder larger",
			eSpan.BarrierShare(), eReorder.BarrierShare())
	}
	// Machine-level estimate must roughly track the simulator: a single
	// processor running one iteration takes about the estimated total.
	me := reorder.Tasks[0].Estimate()
	if me.Total() <= 0 {
		t.Fatalf("machine estimate = %+v", me)
	}
	if me.BarrierShare() <= 0 || me.BarrierShare() >= 1 {
		t.Errorf("machine barrier share = %.2f, want in (0,1)", me.BarrierShare())
	}
}

func TestEstimateWeights(t *testing.T) {
	p := &ir.Program{Code: []ir.Instr{
		{Op: ir.Add, Dst: ir.Temp(0), A: ir.Const(1), B: ir.Const(2)},           // 1
		{Op: ir.Mul, Dst: ir.Temp(1), A: ir.Temp(0), B: ir.Const(2)},            // 3
		{Op: ir.Div, Dst: ir.Temp(2), A: ir.Temp(1), B: ir.Const(2)},            // 8
		{Op: ir.Load, Dst: ir.Temp(3), A: ir.Temp(2), Barrier: true},            // 2 (barrier)
		{Op: ir.Label, Target: "x"},                                             // 0
		{Op: ir.IfGoto, A: ir.Temp(3), B: ir.Const(0), Rel: ir.EQ, Target: "x"}, // 1
	}}
	e := EstimateTAC(p)
	if e.NonBarrier != 13 || e.Barrier != 2 {
		t.Errorf("estimate = %+v, want 13/2", e)
	}
	if e.Total() != 15 {
		t.Errorf("total = %d", e.Total())
	}
}

func TestMachineLevelReorderingIsWeaker(t *testing.T) {
	// Section 4's claim: post-codegen reordering is restricted by the
	// register reuse the code generator introduced. Compare the same
	// algorithm at both levels on the span-mode Poisson task.
	prog := lang.MustParse(poissonSrc)
	span, err := Compile(prog, Options{Procs: 4, Mode: RegionSpan})
	if err != nil {
		t.Fatal(err)
	}
	reorder, err := Compile(prog, Options{Procs: 4, Mode: RegionReorder})
	if err != nil {
		t.Fatal(err)
	}
	window := LargestNonBarrierWindow(span.Tasks[0].Machine)
	if len(window) == 0 {
		t.Fatal("no non-barrier window in span task")
	}
	split, err := ReorderMachineWindow(window)
	if err != nil {
		t.Fatal(err)
	}
	pre, nb, post := split.Sizes()
	if pre+nb+post != len(window) {
		t.Fatalf("split %d+%d+%d does not partition %d", pre, nb, post, len(window))
	}
	if nb >= len(window) {
		t.Errorf("machine reorder moved nothing: nb=%d of %d", nb, len(window))
	}
	tacWindow := LargestNonBarrierWindow(reorder.Tasks[0].Machine)
	if nb <= len(tacWindow) {
		t.Errorf("machine-level nb (%d) should exceed TAC-level machine nb (%d): register reuse restricts it",
			nb, len(tacWindow))
	}
	// Memory accesses all stay in the non-barrier portion.
	for _, in := range split.Pre {
		if in.TouchesMemory() {
			t.Errorf("memory op moved to pre: %v", in)
		}
	}
	for _, in := range split.Post {
		if in.TouchesMemory() {
			t.Errorf("memory op moved to post: %v", in)
		}
	}
}

func TestReorderMachineWindowRejectsControl(t *testing.T) {
	code := []isa.Instr{{Op: isa.BR}}
	if _, err := ReorderMachineWindow(code); err == nil {
		t.Error("control instruction accepted")
	}
}

func TestMachineRegisterDepsRespectScratchReuse(t *testing.T) {
	// Two address materializations through the same scratch register: the
	// second LDI must not move ahead of the load that reads the first.
	code := []isa.Instr{
		{Op: isa.LDI, Rd: 1, Imm: 100}, // r1 = &a
		{Op: isa.LD, Rd: 4, Rs: 1},     // marked: r4 = [r1]
		{Op: isa.LDI, Rd: 1, Imm: 200}, // r1 = &b (recycles r1: anti-dep on the load)
		{Op: isa.LD, Rd: 5, Rs: 1},     // marked: r5 = [r1]
		{Op: isa.ADD, Rd: 6, Rs: 4, Rt: 5},
	}
	split, err := ReorderMachineWindow(code)
	if err != nil {
		t.Fatal(err)
	}
	pre, nb, post := split.Sizes()
	// Only the first LDI can move to pre; the second is pinned behind the
	// first load by the register recycle, and the final ADD depends on
	// marked loads so it lands in post.
	if pre != 1 || nb != 3 || post != 1 {
		t.Errorf("split = %d/%d/%d, want 1/3/1\npre=%v\nnb=%v\npost=%v",
			pre, nb, post, split.Pre, split.NonBarrier, split.Post)
	}
}
