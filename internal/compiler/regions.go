package compiler

import (
	"fmt"

	"fuzzybarrier/internal/dag"
	"fuzzybarrier/internal/ir"
	"fuzzybarrier/internal/lang"
)

// compileTask builds one processor's task: distribute the work, lower to
// TAC, construct barrier/non-barrier regions, and generate machine code.
func compileTask(prog *lang.Program, outer *lang.ForStmt, layout *Layout, an *analysis, opt Options, p int) (*Task, error) {
	params := make(map[string]int64, len(opt.Params))
	for k, v := range opt.Params {
		params[k] = v
	}

	// Lower each top-level statement of the sequential loop body into its
	// own chunk. Region structure is decided *globally* per statement (a
	// statement with marked accesses yields one non-barrier window on
	// every processor, so synchronization counts agree across streams).
	type chunk struct {
		code     []ir.Instr
		windowed bool // this statement carries a non-barrier window
	}
	var chunks []chunk
	lblBase := 0
	for si, stmt := range outer.Body {
		stmts, binds, err := distribute(stmt, params, opt.Procs, p)
		if err != nil {
			return nil, fmt.Errorf("statement %d: %w", si, err)
		}
		taskParams := make(map[string]int64, len(params)+len(binds))
		for k, v := range params {
			taskParams[k] = v
		}
		for k, v := range binds {
			taskParams[k] = v
		}
		// Each distributed statement becomes its own chunk, so that an
		// unmarked statement sharing a parallel loop with marked code
		// still lands in the barrier region — the Figure 7 construction,
		// where the whole if-statement follows the marked assignment into
		// the region.
		if len(stmts) == 0 {
			chunks = append(chunks, chunk{windowed: stmtHasMarked(stmt, an)})
			continue
		}
		for _, s := range stmts {
			lo := newLowerer(layout, taskParams, an.Marked)
			lo.nextLbl = lblBase
			lo.lowerStmt(s)
			code, err := lo.finish()
			if err != nil {
				return nil, fmt.Errorf("statement %d: %w", si, err)
			}
			lblBase = lo.nextLbl
			chunks = append(chunks, chunk{code: code, windowed: stmtHasMarked(s, an)})
		}
	}

	// Assemble the loop body with Barrier flags.
	var body []ir.Instr
	anyWindow := false
	setBarrier := func(code []ir.Instr, barrier bool) {
		for i := range code {
			code[i].Barrier = barrier
		}
	}
	for _, ch := range chunks {
		if opt.Mode == RegionPoint || !ch.windowed {
			// Point mode marks nothing here; the single-nop barrier
			// region is appended after the body. Unmarked statements are
			// barrier-region code (Figure 5's distributed S2 loop).
			setBarrier(ch.code, opt.Mode != RegionPoint)
			body = append(body, ch.code...)
			continue
		}
		anyWindow = true
		switch {
		case len(ch.code) == 0:
			// The statement is marked globally but this processor owns no
			// iterations: emit the paper's null operation as its window.
			body = append(body, ir.Instr{Op: ir.Nop, Comment: "empty window (no owned iterations)"})
		case isStraightLine(ch.code) && opt.Mode == RegionReorder:
			split, err := dag.ThreePhase(ir.Block(ch.code))
			if err != nil {
				return nil, err
			}
			setBarrier(split.Pre, true)
			setBarrier(split.NonBarrier, false)
			setBarrier(split.Post, true)
			body = append(body, split.Pre...)
			body = append(body, split.NonBarrier...)
			body = append(body, split.Post...)
		case isStraightLine(ch.code):
			// Figure 4(a): the window spans first..last marked.
			first, last := markedSpan(ch.code)
			setBarrier(ch.code[:first], true)
			setBarrier(ch.code[first:last+1], false)
			setBarrier(ch.code[last+1:], true)
			body = append(body, ch.code...)
		default:
			// Control flow around marked accesses: the entire statement
			// becomes the non-barrier window (Figure 5(c)'s S1 loop).
			setBarrier(ch.code, false)
			body = append(body, ch.code...)
		}
	}
	if opt.Mode != RegionPoint && !anyWindow {
		// No marked statements at all: keep per-iteration synchronization
		// well-defined with a one-instruction non-barrier window.
		body = append(body, ir.Instr{Op: ir.Nop, Comment: "window (no marked statements)"})
	}

	// Wrap with the sequential loop control. In the fuzzy modes the
	// control code belongs to the barrier region (Figure 4); in point
	// mode the barrier region is a single null operation and everything
	// else is non-barrier.
	ctlBarrier := opt.Mode != RegionPoint
	var code []ir.Instr
	outerFromOp, err := lowerConstOrVar(outer.From, params)
	if err != nil {
		return nil, fmt.Errorf("outer loop start: %w", err)
	}
	outerToOp, err := lowerConstOrVar(outer.To, params)
	if err != nil {
		return nil, fmt.Errorf("outer loop bound: %w", err)
	}
	kv := ir.Var(outer.Var)
	code = append(code, ir.Instr{Op: ir.Assign, Dst: kv, A: outerFromOp, Barrier: ctlBarrier})
	code = append(code, ir.Instr{Op: ir.Label, Target: "Lhead", Barrier: ctlBarrier})
	code = append(code, body...)
	if opt.Mode == RegionPoint {
		code = append(code, ir.Instr{Op: ir.Nop, Barrier: true, Comment: "point barrier"})
	}
	code = append(code, ir.Instr{Op: ir.Add, Dst: kv, A: kv, B: ir.Const(outer.Step), Barrier: ctlBarrier})
	code = append(code, ir.Instr{Op: ir.IfGoto, A: kv, B: outerToOp, Rel: outer.Rel, Target: "Lhead", Barrier: ctlBarrier})

	tac := &ir.Program{Name: fmt.Sprintf("task-P%d", p), Code: code}
	mach, err := codegen(tac, layout, opt, p)
	if err != nil {
		return nil, err
	}
	return &Task{Proc: p, TAC: tac, Machine: mach, Stats: tac.Stats()}, nil
}

// lowerConstOrVar lowers a loop-bound expression that must be either a
// compile-time constant or a bare scalar variable.
func lowerConstOrVar(e lang.Expr, params map[string]int64) (ir.Operand, error) {
	lo := newLowerer(nil, params, nil)
	if v, ok := lo.constOf(e); ok {
		return ir.Const(v), nil
	}
	if v, ok := e.(lang.VarExpr); ok {
		return ir.Var(v.Name), nil
	}
	return ir.Operand{}, fmt.Errorf("bound %v must be a constant or scalar variable", e)
}

func isStraightLine(code []ir.Instr) bool {
	for _, in := range code {
		if in.IsControl() {
			return false
		}
	}
	return true
}

func markedSpan(code []ir.Instr) (first, last int) {
	first, last = -1, -1
	for i, in := range code {
		if in.Marked {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		// Caller guarantees at least one marked instruction; degrade to
		// the whole chunk if not.
		return 0, len(code) - 1
	}
	return first, last
}

// stmtHasMarked reports whether a statement contains any access whose
// signature the analysis marked.
func stmtHasMarked(s lang.Stmt, an *analysis) bool {
	found := false
	var walkExpr func(e lang.Expr)
	walkExpr = func(e lang.Expr) {
		switch x := e.(type) {
		case lang.BinExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case lang.IndexExpr:
			if an.Marked(accessSig(x.Name, x.Indices, false)) {
				found = true
			}
			for _, idx := range x.Indices {
				walkExpr(idx)
			}
		}
	}
	var walkStmts func(ss []lang.Stmt)
	walkStmts = func(ss []lang.Stmt) {
		for _, st := range ss {
			switch x := st.(type) {
			case *lang.AssignStmt:
				walkExpr(x.RHS)
				if len(x.LHS.Indices) > 0 && an.Marked(accessSig(x.LHS.Name, x.LHS.Indices, true)) {
					found = true
				}
			case *lang.IfStmt:
				walkExpr(x.Cond.L)
				walkExpr(x.Cond.R)
				walkStmts(x.Then)
				walkStmts(x.Else)
			case *lang.ForStmt:
				walkStmts(x.Body)
			}
		}
	}
	walkStmts([]lang.Stmt{s})
	return found
}
