package compiler

import (
	"fmt"

	"fuzzybarrier/internal/ir"
	"fuzzybarrier/internal/lang"
)

// lowerer translates AST statements to three-address code in the style of
// Figure 4: explicit temporaries for every intermediate value, explicit
// address arithmetic for array references, bracketed loads and stores.
type lowerer struct {
	layout  *Layout
	params  map[string]int64 // named compile-time constants (incl. bound par vars)
	marked  func(sig string) bool
	nextT   int
	nextLbl int
	code    []ir.Instr
	errs    []error
}

func newLowerer(layout *Layout, params map[string]int64, marked func(string) bool) *lowerer {
	p := make(map[string]int64, len(params))
	for k, v := range params {
		p[k] = v
	}
	if marked == nil {
		marked = func(string) bool { return false }
	}
	return &lowerer{layout: layout, params: p, marked: marked}
}

// accessSig computes the canonical signature of an array access from its
// *source* index expressions (before parameter binding), so it matches the
// signatures produced by dependence analysis.
func accessSig(name string, indices []lang.Expr, write bool) string {
	acc := access{Array: name, Write: write}
	for _, idx := range indices {
		acc.Subs = append(acc.Subs, affineOf(idx))
	}
	return acc.Signature()
}

func (lo *lowerer) errf(format string, args ...any) {
	lo.errs = append(lo.errs, fmt.Errorf("compiler: "+format, args...))
}

func (lo *lowerer) temp() ir.Operand {
	t := ir.Temp(lo.nextT)
	lo.nextT++
	return t
}

func (lo *lowerer) label(prefix string) string {
	lo.nextLbl++
	return fmt.Sprintf("%s%d", prefix, lo.nextLbl)
}

func (lo *lowerer) emit(in ir.Instr) {
	lo.code = append(lo.code, in)
}

// operandOf lowers an expression to an operand, emitting TAC as needed.
// Constants (literals, bound parameters, foldable arithmetic) become
// KindConst operands directly.
func (lo *lowerer) operandOf(e lang.Expr) ir.Operand {
	if v, ok := lo.constOf(e); ok {
		return ir.Const(v)
	}
	switch x := e.(type) {
	case lang.VarExpr:
		return ir.Var(x.Name)
	case lang.BinExpr:
		a := lo.operandOf(x.L)
		b := lo.operandOf(x.R)
		t := lo.temp()
		lo.emit(ir.Instr{Op: x.Op, Dst: t, A: a, B: b})
		return t
	case lang.IndexExpr:
		addr, comment := lo.address(x.Name, x.Indices)
		t := lo.temp()
		lo.emit(ir.Instr{
			Op: ir.Load, Dst: t, A: addr, Comment: comment,
			Marked: lo.marked(accessSig(x.Name, x.Indices, false)),
		})
		return t
	case lang.NumExpr:
		return ir.Const(x.Val)
	}
	lo.errf("cannot lower expression %v", e)
	return ir.Const(0)
}

// constOf attempts compile-time evaluation.
func (lo *lowerer) constOf(e lang.Expr) (int64, bool) {
	switch x := e.(type) {
	case lang.NumExpr:
		return x.Val, true
	case lang.VarExpr:
		v, ok := lo.params[x.Name]
		return v, ok
	case lang.BinExpr:
		l, ok1 := lo.constOf(x.L)
		r, ok2 := lo.constOf(x.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch x.Op {
		case ir.Add:
			return l + r, true
		case ir.Sub:
			return l - r, true
		case ir.Mul:
			return l * r, true
		case ir.Div:
			if r == 0 {
				lo.errf("division by zero in constant expression")
				return 0, false
			}
			return l / r, true
		case ir.Mod:
			if r == 0 {
				lo.errf("modulo by zero in constant expression")
				return 0, false
			}
			return l % r, true
		}
	}
	return 0, false
}

// address emits the Figure 4-style address computation for an array
// reference and returns the operand holding the element address. Layout is
// row-major, one word per element:
//
//	T1 = j + 1            (index expression)
//	T2 = C * i            (row scaling)
//	T3 = T2 + P           (base)
//	T5 = T3 + T1          (element address)
func (lo *lowerer) address(name string, indices []lang.Expr) (ir.Operand, string) {
	arr, ok := lo.layout.Array(name)
	if !ok {
		lo.errf("reference to unknown array %q", name)
		return ir.Const(0), ""
	}
	if len(indices) != len(arr.Dims) {
		lo.errf("array %q rank mismatch: %d indices for %d dims", name, len(indices), len(arr.Dims))
		return ir.Const(0), ""
	}
	comment := fmt.Sprintf("address of %s%s", name, renderIndices(indices))

	// Horner evaluation of the linearized subscript.
	var linear ir.Operand
	for d, idxExpr := range indices {
		idx := lo.operandOf(idxExpr)
		if d == 0 {
			linear = idx
			continue
		}
		stride := arr.Dims[d]
		// linear = linear*stride + idx, with constant folding.
		if linear.Kind == ir.KindConst && idx.Kind == ir.KindConst {
			linear = ir.Const(linear.Val*stride + idx.Val)
			continue
		}
		t1 := lo.temp()
		lo.emit(ir.Instr{Op: ir.Mul, Dst: t1, A: linear, B: ir.Const(stride)})
		t2 := lo.temp()
		lo.emit(ir.Instr{Op: ir.Add, Dst: t2, A: t1, B: idx})
		linear = t2
	}
	// addr = linear + base.
	if linear.Kind == ir.KindConst {
		// Fold completely: base is a link-time constant too, but keep the
		// Base symbol so the layout stays visible in the TAC.
		t := lo.temp()
		lo.emit(ir.Instr{Op: ir.Add, Dst: t, A: ir.Const(linear.Val), B: ir.Base(name), Comment: comment})
		return t, ""
	}
	t := lo.temp()
	lo.emit(ir.Instr{Op: ir.Add, Dst: t, A: linear, B: ir.Base(name), Comment: comment})
	return t, ""
}

func renderIndices(indices []lang.Expr) string {
	s := ""
	for _, e := range indices {
		s += "[" + e.String() + "]"
	}
	return s
}

// lowerStmt lowers one statement.
func (lo *lowerer) lowerStmt(s lang.Stmt) {
	switch x := s.(type) {
	case *lang.AssignStmt:
		lo.lowerAssign(x)
	case *lang.IfStmt:
		lo.lowerIf(x)
	case *lang.ForStmt:
		lo.lowerFor(x)
	default:
		lo.errf("cannot lower statement %T", s)
	}
}

func (lo *lowerer) lowerAssign(s *lang.AssignStmt) {
	if len(s.LHS.Indices) == 0 {
		val := lo.operandOf(s.RHS)
		lo.emit(ir.Instr{Op: ir.Assign, Dst: ir.Var(s.LHS.Name), A: val})
		return
	}
	// Array store: the paper computes the value first where profitable,
	// but the address computation ordering is the reorderer's business;
	// lower value then address, matching Figure 4(a).
	val := lo.operandOf(s.RHS)
	addr, comment := lo.address(s.LHS.Name, s.LHS.Indices)
	lo.emit(ir.Instr{
		Op: ir.Store, Dst: addr, B: val, Comment: comment,
		Marked: lo.marked(accessSig(s.LHS.Name, s.LHS.Indices, true)),
	})
}

func (lo *lowerer) lowerIf(s *lang.IfStmt) {
	elseLbl := lo.label("Else")
	endLbl := lo.label("Endif")
	l := lo.operandOf(s.Cond.L)
	r := lo.operandOf(s.Cond.R)
	target := endLbl
	if len(s.Else) > 0 {
		target = elseLbl
	}
	lo.emit(ir.Instr{Op: ir.IfGoto, A: l, B: r, Rel: s.Cond.Rel.Negate(), Target: target})
	for _, st := range s.Then {
		lo.lowerStmt(st)
	}
	if len(s.Else) > 0 {
		lo.emit(ir.Instr{Op: ir.Goto, Target: endLbl})
		lo.emit(ir.Instr{Op: ir.Label, Target: elseLbl})
		for _, st := range s.Else {
			lo.lowerStmt(st)
		}
	}
	lo.emit(ir.Instr{Op: ir.Label, Target: endLbl})
}

func (lo *lowerer) lowerFor(s *lang.ForStmt) {
	// Inner loops are always lowered sequentially here: par loops have
	// been rewritten by task generation before lowering.
	head := lo.label("L")
	v := ir.Var(s.Var)
	from := lo.operandOf(s.From)
	lo.emit(ir.Instr{Op: ir.Assign, Dst: v, A: from})
	lo.emit(ir.Instr{Op: ir.Label, Target: head})
	// Bound check at the top so zero-trip loops work.
	to := lo.operandOf(s.To)
	exit := lo.label("Done")
	lo.emit(ir.Instr{Op: ir.IfGoto, A: v, B: to, Rel: s.Rel.Negate(), Target: exit})
	for _, st := range s.Body {
		lo.lowerStmt(st)
	}
	lo.emit(ir.Instr{Op: ir.Add, Dst: v, A: v, B: ir.Const(s.Step)})
	lo.emit(ir.Instr{Op: ir.Goto, Target: head})
	lo.emit(ir.Instr{Op: ir.Label, Target: exit})
}

// finish returns the accumulated code or the first error.
func (lo *lowerer) finish() ([]ir.Instr, error) {
	for _, err := range lo.errs {
		return nil, err
	}
	return lo.code, nil
}
