package compiler

import (
	"strings"
	"testing"

	"fuzzybarrier/internal/ir"
	"fuzzybarrier/internal/lang"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/mem"
)

const poissonSrc = `
/* Figure 3(a): Poisson solver, M = 2. Boundary values live in rows and
   columns 0 and 3. */
int P[4][4];
for (k=1; k<=20; k++) do seq
  for (i=1; i<=2; i++) do par
    for (j=1; j<=2; j++) do par {
      P[i][j] = (P[i][j+1] + P[i][j-1] + P[i+1][j] + P[i-1][j]) / 4;
    }
`

const fig9Src = `
/* Figure 9: lexically forward + loop carried dependences. */
int a[10][5];
for (j=1; j<=9; j++) do seq
  for (i=1; i<=4; i++) do par {
    a[j][i] = a[j-1][i-1] + i*j;
  }
`

const fig5Src = `
/* Figure 5(a): candidate for loop distribution. */
int a[8][12];
int b[8][12];
int c[8][12];
for (i=1; i<=10; i++) do seq
  for (j=1; j<=6; j++) do par {
    a[j][i] = a[j+1][i-1] + 2;
    b[j][i] = b[j][i] + c[j][i];
  }
`

func runTasks(t *testing.T, c *Compiled, procs int) (*machine.Machine, *machine.Result) {
	t.Helper()
	words := c.Layout.Words + 64
	m := machine.New(machine.Config{
		Procs: procs,
		Mem: mem.Config{
			Words: int(words), Procs: procs,
			HitLatency: 1, MissLatency: 1, Modules: procs, ModuleBusy: 1,
		},
	})
	for _, task := range c.Tasks {
		if err := task.Machine.Validate(false); err != nil {
			t.Fatalf("P%d machine code invalid: %v", task.Proc, err)
		}
		if err := m.Load(task.Proc, task.Machine); err != nil {
			t.Fatal(err)
		}
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("simulation failed: %v\nP0 code:\n%s", err, c.Tasks[0].Machine.Disassemble())
	}
	return m, res
}

func TestAnalyzePoissonMarksAllAccesses(t *testing.T) {
	prog := lang.MustParse(poissonSrc)
	an := analyze(prog)
	want := []string{
		"P[i+1][j]:R", "P[i-1][j]:R", "P[i][j+1]:R", "P[i][j-1]:R", "P[i][j]:W",
	}
	for _, sig := range want {
		if !an.Marked(sig) {
			t.Errorf("access %s not marked; marked set: %v", sig, an.MarkedSignatures())
		}
	}
}

func TestAnalyzeFig5Marking(t *testing.T) {
	prog := lang.MustParse(fig5Src)
	an := analyze(prog)
	for _, sig := range []string{"a[j][i]:W", "a[j+1][i-1]:R"} {
		if !an.Marked(sig) {
			t.Errorf("access %s should be marked; marked set: %v", sig, an.MarkedSignatures())
		}
	}
	// S2's accesses stay with their owning processor (par var j, zero
	// displacement), so they must not be marked.
	for _, sig := range []string{"b[j][i]:W", "b[j][i]:R", "c[j][i]:R"} {
		if an.Marked(sig) {
			t.Errorf("access %s wrongly marked; marked set: %v", sig, an.MarkedSignatures())
		}
	}
}

func TestReorderShrinksNonBarrierRegion(t *testing.T) {
	prog := lang.MustParse(poissonSrc)
	span, err := Compile(prog, Options{Procs: 4, Mode: RegionSpan})
	if err != nil {
		t.Fatalf("span compile: %v", err)
	}
	reorder, err := Compile(prog, Options{Procs: 4, Mode: RegionReorder})
	if err != nil {
		t.Fatalf("reorder compile: %v", err)
	}
	s0 := span.Tasks[0].Stats
	r0 := reorder.Tasks[0].Stats
	if r0.NonBarrier >= s0.NonBarrier {
		t.Errorf("reordering should shrink the non-barrier region: span=%d reorder=%d\nspan TAC:\n%s\nreorder TAC:\n%s",
			s0.NonBarrier, r0.NonBarrier, span.Tasks[0].TAC, reorder.Tasks[0].TAC)
	}
	if r0.Barrier <= s0.Barrier {
		t.Errorf("reordering should grow the barrier region: span=%d reorder=%d", s0.Barrier, r0.Barrier)
	}
	// The marked instructions must all be in the non-barrier region.
	for _, task := range reorder.Tasks {
		for _, in := range task.TAC.Code {
			if in.Marked && in.Barrier {
				t.Errorf("P%d: marked instruction %q placed in barrier region", task.Proc, in.String())
			}
		}
	}
}

func TestPoissonRunsToCompletion(t *testing.T) {
	prog := lang.MustParse(poissonSrc)
	for _, mode := range []RegionMode{RegionSpan, RegionReorder, RegionPoint} {
		c, err := Compile(prog, Options{Procs: 4, Mode: mode})
		if err != nil {
			t.Fatalf("%v compile: %v", mode, err)
		}
		_, res := runTasks(t, c, 4)
		if res.Deadlocked {
			t.Fatalf("%v: deadlocked", mode)
		}
		if res.Syncs() < 20 {
			t.Errorf("%v: syncs = %d, want >= 20 (one per outer iteration)", mode, res.Syncs())
		}
	}
}

func fig9Reference() [10][5]int64 {
	var a [10][5]int64
	for j := 1; j <= 9; j++ {
		for i := 1; i <= 4; i++ {
			a[j][i] = a[j-1][i-1] + int64(i*j)
		}
	}
	return a
}

func TestFig9ComputesCorrectValues(t *testing.T) {
	prog := lang.MustParse(fig9Src)
	ref := fig9Reference()
	for _, mode := range []RegionMode{RegionSpan, RegionReorder, RegionPoint} {
		c, err := Compile(prog, Options{Procs: 4, Mode: mode})
		if err != nil {
			t.Fatalf("%v compile: %v", mode, err)
		}
		m, res := runTasks(t, c, 4)
		if res.Deadlocked {
			t.Fatalf("%v deadlocked", mode)
		}
		for j := 0; j <= 9; j++ {
			for i := 0; i <= 4; i++ {
				addr, err := c.Layout.Addr("a", int64(j), int64(i))
				if err != nil {
					t.Fatal(err)
				}
				if got := m.Mem().MustPeek(addr); got != ref[j][i] {
					t.Errorf("%v: a[%d][%d] = %d, want %d", mode, j, i, got, ref[j][i])
				}
			}
		}
	}
}

func TestFig9UnrolledMatchesReference(t *testing.T) {
	// Unrolling the sequential loop once (Figure 9's tasks) produces two
	// windows per unrolled iteration — the Figure 10 structure — and must
	// still compute the same values. Use j=1..8 so the trip count is
	// divisible.
	src := strings.Replace(fig9Src, "j<=9", "j<=8", 1)
	prog := lang.MustParse(src)
	outer := prog.Body[0].(*lang.ForStmt)
	unrolled, err := UnrollSeq(outer, 2, nil)
	if err != nil {
		t.Fatalf("unroll: %v", err)
	}
	prog.Body[0] = unrolled

	c, err := Compile(prog, Options{Procs: 4, Mode: RegionReorder})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, res := runTasks(t, c, 4)
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	// Two windows per unrolled iteration: one barrier for the lexically
	// forward dependence, one for the loop-carried (Figure 10).
	if res.Syncs() < 8 {
		t.Errorf("syncs = %d, want >= 8 (two per unrolled iteration x 4)", res.Syncs())
	}
	var ref [10][5]int64
	for j := 1; j <= 8; j++ {
		for i := 1; i <= 4; i++ {
			ref[j][i] = ref[j-1][i-1] + int64(i*j)
		}
	}
	for j := 0; j <= 8; j++ {
		for i := 0; i <= 4; i++ {
			addr, err := c.Layout.Addr("a", int64(j), int64(i))
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Mem().MustPeek(addr); got != ref[j][i] {
				t.Errorf("a[%d][%d] = %d, want %d", j, i, got, ref[j][i])
			}
		}
	}
}

func TestLoopDistribution(t *testing.T) {
	prog := lang.MustParse(fig5Src)
	outer := prog.Body[0].(*lang.ForStmt)
	inner := outer.Body[0].(*lang.ForStmt)
	loops, err := DistributeLoop(inner)
	if err != nil {
		t.Fatalf("distribute: %v", err)
	}
	if len(loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(loops))
	}
	outer.Body = []lang.Stmt{loops[0], loops[1]}

	// After distribution the S2 loop is wholly unmarked, so it belongs to
	// the barrier region: the barrier share of the body must be large.
	c, err := Compile(prog, Options{Procs: 3, Mode: RegionReorder})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	st := c.Tasks[0].Stats
	if st.Barrier <= st.NonBarrier {
		t.Errorf("after distribution barrier region (%d) should exceed non-barrier (%d)\n%s",
			st.Barrier, st.NonBarrier, c.Tasks[0].TAC)
	}
	_, res := runTasks(t, c, 3)
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
}

func TestDistributionIllegalOnBackwardDep(t *testing.T) {
	src := `
int x[8][8];
for (i=1; i<=6; i++) do seq
  for (j=1; j<=6; j++) do par {
    x[j][i] = x[j][i] + 1;
    x[j][i] = x[j][i] * 2;
  }
`
	prog := lang.MustParse(src)
	inner := prog.Body[0].(*lang.ForStmt).Body[0].(*lang.ForStmt)
	if _, err := DistributeLoop(inner); err == nil {
		t.Fatal("expected distribution to be rejected (same array written by both statements)")
	}
}

func TestBlockDistributionCoversAllIterations(t *testing.T) {
	// 6 parallel iterations on 4 processors: blocks of 2,2,2,0.
	prog := lang.MustParse(fig5Src)
	c, err := Compile(prog, Options{Procs: 4, Mode: RegionSpan})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, res := runTasks(t, c, 4)
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	// a[j][i] = a[j+1][i-1] + 2 chains diagonally from the never-written
	// row 7: after the run, a[j][10] = 2 * (7 - j) for j in 1..6. Getting
	// these values right requires the barrier to order each row-(j+1)
	// write before the row-j read of the next outer iteration across the
	// block boundaries.
	for j := int64(1); j <= 6; j++ {
		addr, err := c.Layout.Addr("a", j, 10)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.Mem().MustPeek(addr); got != 2*(7-j) {
			t.Errorf("a[%d][10] = %d, want %d", j, got, 2*(7-j))
		}
	}
	_ = res
}

func TestUnrollRejectsIndivisible(t *testing.T) {
	prog := lang.MustParse(fig9Src) // 9 iterations
	outer := prog.Body[0].(*lang.ForStmt)
	if _, err := UnrollSeq(outer, 2, nil); err == nil {
		t.Fatal("expected unroll of 9 iterations by 2 to fail")
	}
}

func TestCompileRejectsBadShapes(t *testing.T) {
	cases := []string{
		// Top-level par loop.
		`int a[4][4];
		 for (i=1; i<=2; i++) do par { a[i][1] = 1; }`,
		// Non-parallel statement inside the sequential loop.
		`int a[4][4];
		 for (k=1; k<=2; k++) do seq { a[1][1] = k; }`,
	}
	for i, src := range cases {
		prog, err := lang.Parse(src)
		if err != nil {
			t.Fatalf("case %d parse: %v", i, err)
		}
		if _, err := Compile(prog, Options{Procs: 2}); err == nil {
			t.Errorf("case %d: expected compile error", i)
		}
	}
}

func TestTACRenderingShowsRegions(t *testing.T) {
	prog := lang.MustParse(poissonSrc)
	c, err := Compile(prog, Options{Procs: 4, Mode: RegionReorder})
	if err != nil {
		t.Fatal(err)
	}
	out := c.Tasks[0].TAC.String()
	if !strings.Contains(out, "Barrier:") || !strings.Contains(out, "Non-barrier:") {
		t.Errorf("TAC rendering missing region banners:\n%s", out)
	}
}

const fig7Src = `
/* Figure 7: a parallel loop whose body ends in an if-statement with
   branches of different length. S1 carries the cross-processor
   dependence; the if-statement touches only processor-private data. */
int s[8][12];
int w[8][12];
for (i=1; i<=10; i++) do seq
  for (j=1; j<=4; j++) do par {
    s[j][i] = s[j+1][i-1] + 1;
    if (j < 3) then {
      w[j][1] = w[j][1] + 1;
    } else {
      w[j][1] = w[j][1] + 1;
      w[j][2] = w[j][2] + 2;
      w[j][3] = w[j][3] + 3;
      w[j][3] = w[j][3] * 2;
    }
  }
`

func TestFig7IfStatementLandsInBarrierRegion(t *testing.T) {
	prog := lang.MustParse(fig7Src)
	c, err := Compile(prog, Options{Procs: 4, Mode: RegionReorder})
	if err != nil {
		t.Fatal(err)
	}
	// The if-statement (unmarked) must be barrier code: look for a
	// conditional TAC instruction with the Barrier flag set.
	task := c.Tasks[0]
	foundBarrierIf := false
	for _, in := range task.TAC.Code {
		if in.Op == ir.IfGoto && in.Target != "Lhead" && in.Barrier {
			foundBarrierIf = true
		}
	}
	if !foundBarrierIf {
		t.Errorf("if-statement not in barrier region:\n%s", task.TAC)
	}
	// Exactly one window per iteration (only S1 is marked): 10 iteration
	// boundaries plus the initial region before the first window.
	m, res := runTasks(t, c, 4)
	if res.Syncs() != 11 {
		t.Errorf("syncs = %d, want 11 (one window per iteration + initial region)", res.Syncs())
	}
	_ = m
}

func TestFig7FuzzyBeatsPointUnderBranchVariance(t *testing.T) {
	prog := lang.MustParse(fig7Src)
	run := func(mode RegionMode) int64 {
		c, err := Compile(prog, Options{Procs: 4, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		_, res := runTasks(t, c, 4)
		return res.TotalStalls()
	}
	point := run(RegionPoint)
	fuzzy := run(RegionReorder)
	if point == 0 {
		t.Skip("no branch-variance stalls in this configuration")
	}
	if fuzzy >= point {
		t.Errorf("fuzzy stalls (%d) should be below point (%d)", fuzzy, point)
	}
}
