package transport

// rng is the xorshift64* generator the repository uses everywhere
// determinism matters (the same recurrence as internal/cluster's rng,
// duplicated here because cluster imports transport for the extracted
// reliability window — the dependency points the other way).
type rng struct{ state uint64 }

// mix derives an independent stream seed from (seed, salt) via one
// splitmix64 step, so per-endpoint and per-network streams never
// collide even for adjacent seeds.
func mix(seed, salt uint64) uint64 {
	z := seed + salt*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func newRNG(seed uint64) *rng {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &rng{state: seed}
}

func (r *rng) next() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// intN returns a value in [0, n), or 0 for n <= 0.
func (r *rng) intN(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.next() % uint64(n))
}

// float returns a value in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}
