package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// UDPNet is the real-socket Network: each endpoint binds a UDP socket,
// datagrams are Message-encoded on the wire (the fuzz-tested codec),
// and routing is production-shaped — servers are registered statically
// (Register), clients are learned dynamically from the source address
// of their first datagram, exactly how a UDP service meets its callers.
// Loss, duplication and reordering are whatever the real network path
// provides (on loopback: effectively reordering under load and drops
// when socket buffers overflow).
type UDPNet struct {
	mu     sync.RWMutex
	eps    map[Addr]*udpEndpoint
	routes map[Addr]*net.UDPAddr
	start  time.Time
	qcap   int

	DecodeErrs atomic.Int64 // datagrams that failed Decode (ignored)
}

// NewUDPNet builds a UDP network; queueCap bounds each endpoint's
// dispatch queue (<= 0 uses the default).
func NewUDPNet(queueCap int) *UDPNet {
	return &UDPNet{
		eps:    make(map[Addr]*udpEndpoint),
		routes: make(map[Addr]*net.UDPAddr),
		start:  time.Now(),
		qcap:   queueCap,
	}
}

// Attach binds an ephemeral loopback socket for a.
func (n *UDPNet) Attach(a Addr, h Handler) (Endpoint, error) {
	ep, _, err := n.AttachListen(a, h, "127.0.0.1:0")
	return ep, err
}

// AttachListen binds the given UDP address (host:port; port 0 for
// ephemeral) for a and returns the endpoint plus the bound address.
func (n *UDPNet) AttachListen(a Addr, h Handler, bind string) (Endpoint, *net.UDPAddr, error) {
	laddr, err := net.ResolveUDPAddr("udp", bind)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: resolving %q: %w", bind, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, nil, fmt.Errorf("transport: binding %q: %w", bind, err)
	}
	n.mu.Lock()
	if _, dup := n.eps[a]; dup {
		n.mu.Unlock()
		conn.Close()
		return nil, nil, fmt.Errorf("transport: udp address %d already attached", a)
	}
	ep := &udpEndpoint{net: n, conn: conn}
	ep.rt = newRTEndpoint(a, h, n.qcap, n.now, ep.transmit)
	n.eps[a] = ep
	// Self-register: endpoints sharing this UDPNet can route to each
	// other without explicit Register calls.
	n.routes[a] = conn.LocalAddr().(*net.UDPAddr)
	n.mu.Unlock()
	ep.wg.Add(1)
	go ep.read()
	return ep, conn.LocalAddr().(*net.UDPAddr), nil
}

// Register installs a static route: datagrams for a go to hostport.
// Servers register each other at startup; clients need only the shard
// routes they dial.
func (n *UDPNet) Register(a Addr, hostport string) error {
	u, err := net.ResolveUDPAddr("udp", hostport)
	if err != nil {
		return fmt.Errorf("transport: resolving route %q: %w", hostport, err)
	}
	n.mu.Lock()
	n.routes[a] = u
	n.mu.Unlock()
	return nil
}

func (n *UDPNet) now() int64 { return time.Since(n.start).Nanoseconds() }

// learn records the sender's socket address so replies can route back;
// a rebinding peer (new source address) overwrites its stale route.
func (n *UDPNet) learn(a Addr, src *net.UDPAddr) {
	n.mu.RLock()
	cur := n.routes[a]
	n.mu.RUnlock()
	if cur != nil && cur.Port == src.Port && cur.IP.Equal(src.IP) {
		return
	}
	n.mu.Lock()
	n.routes[a] = src
	n.mu.Unlock()
}

func (n *UDPNet) route(a Addr) *net.UDPAddr {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.routes[a]
}

// Close shuts every endpoint down.
func (n *UDPNet) Close() error {
	n.mu.Lock()
	eps := n.eps
	n.eps = make(map[Addr]*udpEndpoint)
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}

// udpEndpoint pairs a socket with the shared dispatch loop.
type udpEndpoint struct {
	net  *UDPNet
	rt   *rtEndpoint
	conn *net.UDPConn
	wg   sync.WaitGroup
	once sync.Once
}

// read is the socket pump: decode, learn the sender's route, dispatch.
func (ep *udpEndpoint) read() {
	defer ep.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		nb, src, err := ep.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		m, err := Decode(buf[:nb])
		if err != nil {
			ep.net.DecodeErrs.Add(1)
			continue
		}
		ep.net.learn(m.From, src)
		ep.rt.enqueueMsg(m)
	}
}

// transmit encodes and writes one datagram; unroutable or oversized
// datagrams are dropped (the reliability layer retries once the route
// is learned).
func (ep *udpEndpoint) transmit(m Message) {
	dst := ep.net.route(m.To)
	if dst == nil {
		return
	}
	ep.conn.WriteToUDP(m.Encode(), dst)
}

func (ep *udpEndpoint) Addr() Addr                   { return ep.rt.Addr() }
func (ep *udpEndpoint) Now() int64                   { return ep.rt.Now() }
func (ep *udpEndpoint) After(delay int64, fn func()) { ep.rt.After(delay, fn) }
func (ep *udpEndpoint) Do(fn func())                 { ep.rt.Do(fn) }
func (ep *udpEndpoint) Send(to Addr, m Message) {
	m.From = ep.rt.addr
	m.To = to
	ep.transmit(m)
}

func (ep *udpEndpoint) Close() error {
	ep.once.Do(func() {
		ep.conn.Close()
		ep.wg.Wait()
		ep.rt.Close()
	})
	return nil
}
