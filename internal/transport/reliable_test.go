package transport

import (
	"strings"
	"testing"
)

// relPair wires two Reliable layers over one SimNet and returns them
// plus the net. Delivered messages land in the out slices in order.
func relPair(t *testing.T, cfg SimConfig, rcfg ReliableConfig) (*SimNet, *Reliable, *Reliable, *[]Message, *[]Message) {
	t.Helper()
	net := NewSimNet(cfg)
	var outA, outB []Message
	var ra, rb *Reliable
	epA, err := net.Attach(1, func(m Message) { ra.OnMessage(m) })
	if err != nil {
		t.Fatal(err)
	}
	epB, err := net.Attach(2, func(m Message) { rb.OnMessage(m) })
	if err != nil {
		t.Fatal(err)
	}
	ra = NewReliable(epA, rcfg, func(m Message) { outA = append(outA, m) }, nil)
	rb = NewReliable(epB, rcfg, func(m Message) { outB = append(outB, m) }, nil)
	return net, ra, rb, &outA, &outB
}

// TestReliableLossyDeliversExactlyOnce drives a lossy, jittery
// (reordering), duplicating link and checks every message is delivered
// to the application exactly once, in spite of retransmissions and
// network duplicates — the at-most-once receive side of the extracted
// reliability layer, plus the at-least-once retransmission side.
func TestReliableLossyDeliversExactlyOnce(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 99} {
		cfg := SimConfig{Latency: 3, Jitter: 9, DropRate: 0.3, DupRate: 0.2, Seed: seed}
		net, ra, _, _, outB := relPair(t, cfg, SimReliable(3, 9))
		const n = 200
		ep := net.eps[1]
		ep.Do(func() {
			for i := 0; i < n; i++ {
				ra.Send(2, Message{Kind: KindArrive, Group: 1, Epoch: int64(i)})
			}
		})
		_, ok := net.Run(2_000_000, func() bool { return ra.Unacked() == 0 && len(*outB) >= n })
		if !ok {
			t.Fatalf("seed %d: did not drain: unacked=%d delivered=%d", seed, ra.Unacked(), len(*outB))
		}
		if len(*outB) != n {
			t.Fatalf("seed %d: delivered %d messages, want exactly %d", seed, len(*outB), n)
		}
		// Exactly once: every epoch value appears once.
		seen := make(map[int64]bool)
		for _, m := range *outB {
			if seen[m.Epoch] {
				t.Fatalf("seed %d: epoch %d delivered twice", seed, m.Epoch)
			}
			seen[m.Epoch] = true
		}
		if net.Dropped == 0 || net.Duped == 0 {
			t.Fatalf("seed %d: fault model idle (drops=%d dups=%d) — test not exercising loss", seed, net.Dropped, net.Duped)
		}
		if ra.Stats.Retransmits == 0 {
			t.Fatalf("seed %d: no retransmissions despite %d drops", seed, net.Dropped)
		}
		if ra.Stats.Sends != n {
			t.Fatalf("seed %d: sends=%d want %d", seed, ra.Stats.Sends, n)
		}
	}
}

// TestReliableDupsReackedNotRedelivered pins the duplicate discipline:
// a duplicated delivery is acknowledged again (so the sender retires
// its pending record even if the first ack was lost) but never handed
// to the application twice.
func TestReliableDupsReackedNotRedelivered(t *testing.T) {
	cfg := SimConfig{Latency: 2, Jitter: 0, DupRate: 1.0, Seed: 7} // every transmission duplicated
	net, ra, rb, _, outB := relPair(t, cfg, SimReliable(2, 0))
	net.eps[1].Do(func() { ra.Send(2, Message{Kind: KindJoin, Client: 5}) })
	net.Run(10_000, func() bool { return ra.Stats.Sends == 1 && ra.Unacked() == 0 })
	if len(*outB) != 1 {
		t.Fatalf("delivered %d copies, want 1", len(*outB))
	}
	if rb.Stats.DupDropped == 0 {
		t.Fatal("duplicate was not detected")
	}
	// The duplicate contributed its seq to an ack batch.
	if rb.Stats.AcksCovered < 2 {
		t.Fatalf("acks covered %d seqs, want >= 2 (original + duplicate)", rb.Stats.AcksCovered)
	}
}

// TestReliableRTTAdaptsRTO checks the retransmission timeout is driven
// by the measured RTT: after a stream of acks on a calm link the
// effective RTO must fall well below the (deliberately huge) InitRTO,
// i.e. the stats.RTTEstimator is actually wired into the extracted path.
func TestReliableRTTAdaptsRTO(t *testing.T) {
	cfg := SimConfig{Latency: 5, Jitter: 0, Seed: 1}
	rcfg := ReliableConfig{InitRTO: 100_000, MaxRTO: 200_000, AckDelay: 1, AckBatch: 64}
	net, ra, _, _, _ := relPair(t, cfg, rcfg)
	ep := net.eps[1]
	for i := 0; i < 50; i++ {
		want := int64(i + 1)
		ep.Do(func() { ra.Send(2, Message{Kind: KindArrive}) })
		net.Run(0, func() bool { return ra.Stats.Sends == want && ra.Unacked() == 0 })
	}
	p := ra.peer(2)
	// RTT is ~11 ticks (2*latency + ack delay); the estimator must have
	// converged near that, nowhere near InitRTO.
	est := p.w.RTT.RTO()
	if est <= 0 {
		t.Fatal("estimator has no samples — not wired into the ack path")
	}
	if est < 5 || est > 200 {
		t.Fatalf("RTT-driven RTO estimate %.1f outside plausible [5,200] for an 11-tick RTT", est)
	}
	// NextRTO applies the InitRTO/4 floor (cluster's rule), so with this
	// deliberately huge InitRTO it must sit at exactly that floor — far
	// below InitRTO itself.
	if got := p.w.NextRTO(rcfg.InitRTO, rcfg.MaxRTO); got != rcfg.InitRTO/4 {
		t.Fatalf("NextRTO=%d, want clamp to InitRTO/4=%d", got, rcfg.InitRTO/4)
	}
}

// TestReliableKarnRule: acks for retransmitted messages must not feed
// the RTT estimator (the sample is ambiguous). With 100% first-copy
// loss the estimator must stay sampleless.
func TestReliableKarnRule(t *testing.T) {
	cfg := SimConfig{Latency: 2, Jitter: 0, DropRate: 0.9, Seed: 3}
	net, ra, _, _, outB := relPair(t, cfg, SimReliable(2, 0))
	net.eps[1].Do(func() {
		for i := 0; i < 30; i++ {
			ra.Send(2, Message{Kind: KindArrive, Epoch: int64(i)})
		}
	})
	net.Run(1_000_000, func() bool { return ra.Stats.Sends == 30 && ra.Unacked() == 0 })
	if ra.Stats.Sends != 30 || ra.Unacked() != 0 {
		t.Fatalf("did not drain under 90%% loss: unacked=%d delivered=%d", ra.Unacked(), len(*outB))
	}
	p := ra.peer(2)
	// Messages acked on their first try may sample; any retransmitted
	// message must not have. Compare samples to first-try acks.
	if ra.Stats.Retransmits == 0 {
		t.Skip("no retransmissions at this seed")
	}
	est := p.w.RTT.RTO()
	if est > 0 && est < 4 {
		t.Fatalf("RTT estimate %.1f below the true RTT — a retransmission's ack leaked a bogus sample", est)
	}
}

// TestReliableAckCoalescing: many messages arriving inside one AckDelay
// window must produce far fewer ack datagrams than messages.
func TestReliableAckCoalescing(t *testing.T) {
	cfg := SimConfig{Latency: 1, Jitter: 0, Seed: 1}
	rcfg := ReliableConfig{InitRTO: 1000, MaxRTO: 4000, AckDelay: 50, AckBatch: 1 << 20}
	net, ra, rb, _, _ := relPair(t, cfg, rcfg)
	const n = 100
	net.eps[1].Do(func() {
		for i := 0; i < n; i++ {
			ra.Send(2, Message{Kind: KindArrive, Epoch: int64(i)})
		}
	})
	net.Run(100_000, func() bool { return ra.Stats.Sends == n && ra.Unacked() == 0 })
	if ra.Stats.Sends != n || ra.Unacked() != 0 {
		t.Fatal("did not drain")
	}
	if rb.Stats.AcksCovered != n {
		t.Fatalf("acks covered %d seqs, want %d", rb.Stats.AcksCovered, n)
	}
	if rb.Stats.AcksSent >= n/4 {
		t.Fatalf("coalescing ineffective: %d ack datagrams for %d messages", rb.Stats.AcksSent, n)
	}
	// AckBatch path: tiny batch limit must flush eagerly instead.
	rcfg2 := ReliableConfig{InitRTO: 1000, MaxRTO: 4000, AckDelay: 1 << 20, AckBatch: 4}
	net2, ra2, rb2, _, _ := relPair(t, cfg, rcfg2)
	net2.eps[1].Do(func() {
		for i := 0; i < 16; i++ {
			ra2.Send(2, Message{Kind: KindArrive, Epoch: int64(i)})
		}
	})
	net2.Run(100_000, func() bool { return ra2.Stats.Sends == 16 && ra2.Unacked() == 0 })
	if ra2.Stats.Sends != 16 || ra2.Unacked() != 0 {
		t.Fatal("batch-flush run did not drain (AckDelay timer should never have been needed)")
	}
	if rb2.Stats.AcksSent != 4 {
		t.Fatalf("batch flush sent %d datagrams for 16 acks with AckBatch=4, want 4", rb2.Stats.AcksSent)
	}
}

// TestReliableSimByteIdenticalLog extends the cluster simulator's
// byte-identical replay guarantee to the extracted reliability layer:
// the same (seed, workload) on SimNet yields the same event log,
// byte for byte, including retransmissions and drops.
func TestReliableSimByteIdenticalLog(t *testing.T) {
	run := func() string {
		cfg := SimConfig{Latency: 3, Jitter: 6, DropRate: 0.25, DupRate: 0.1, Seed: 42, LogEvents: true}
		net := NewSimNet(cfg)
		var ra, rb *Reliable
		epA, _ := net.Attach(1, func(m Message) { ra.OnMessage(m) })
		epB, _ := net.Attach(2, func(m Message) { rb.OnMessage(m) })
		rcfg := SimReliable(3, 6)
		ra = NewReliable(epA, rcfg, func(m Message) {}, net)
		rb = NewReliable(epB, rcfg, func(m Message) { rb.Send(1, Message{Kind: KindRelease, Epoch: m.Epoch}) }, net)
		epA.Do(func() {
			for i := 0; i < 40; i++ {
				ra.Send(2, Message{Kind: KindArrive, Epoch: int64(i)})
			}
		})
		net.Run(1_000_000, func() bool {
			return ra.Stats.Sends == 40 && ra.Unacked() == 0 && rb.Unacked() == 0
		})
		return strings.Join(net.EventLog(), "\n")
	}
	a, b := run(), run()
	if a != b {
		t.Fatal("same seed produced different event logs over the extracted reliability layer")
	}
	if !strings.Contains(a, "retransmit") || !strings.Contains(a, "drop") {
		t.Fatal("log does not exercise retransmission/drop paths")
	}
}

// TestReliableUnreliableBypass: Seq==0 messages (acks are the protocol
// case) bypass dedup and retransmission entirely.
func TestReliableUnreliableBypass(t *testing.T) {
	cfg := SimConfig{Latency: 1, Seed: 1}
	net, ra, _, _, outB := relPair(t, cfg, SimReliable(1, 0))
	net.eps[1].Do(func() {
		ep := net.eps[1]
		ep.Send(2, Message{Kind: KindRelease, Epoch: 9}) // raw, Seq 0
	})
	net.Run(1000, nil)
	if ra.Unacked() != 0 {
		t.Fatal("unreliable send created pending state")
	}
	if len(*outB) != 1 || (*outB)[0].Epoch != 9 {
		t.Fatalf("unreliable message not delivered: %v", *outB)
	}
}
