package transport

import (
	"fmt"

	"fuzzybarrier/internal/trace"
)

// ReliableConfig tunes the reliability layer, in the transport's clock
// units (ticks on SimNet, nanoseconds on ChanNet/UDPNet).
type ReliableConfig struct {
	InitRTO int64 // retransmission timeout before any RTT sample
	MaxRTO  int64 // exponential-backoff cap

	// AckDelay is the coalescing window: an incoming reliable message
	// arms a flush timer this far out, and every ack accumulated by
	// then rides one KindAck datagram. 0 acks each message immediately
	// (still batched with anything already pending).
	AckDelay int64
	// AckBatch flushes immediately once this many acks are pending
	// (default 64), bounding datagram size and sender ring growth.
	AckBatch int
}

// withDefaults fills the derived knobs, mirroring cluster's RTO rules.
func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.InitRTO <= 0 {
		c.InitRTO = 1
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 16 * c.InitRTO
	}
	if c.MaxRTO < c.InitRTO {
		c.MaxRTO = c.InitRTO
	}
	if c.AckBatch <= 0 {
		c.AckBatch = 64
	}
	return c
}

// RealtimeReliable returns the default tuning for the nanosecond-clock
// transports: 20ms initial RTO (a shade above any loopback RTT),
// 500ms backoff cap, 1ms ack coalescing.
func RealtimeReliable() ReliableConfig {
	const ms = int64(1e6)
	return ReliableConfig{InitRTO: 20 * ms, MaxRTO: 500 * ms, AckDelay: 1 * ms, AckBatch: 64}
}

// SimReliable returns tuning for a SimNet with the given link
// parameters, mirroring cluster.Config's derivation: InitRTO a shade
// above the worst-case RTT, MaxRTO 16x that, acks coalesced for one
// tick.
func SimReliable(latency, jitter int64) ReliableConfig {
	rto := 2*(latency+jitter) + 2
	return ReliableConfig{InitRTO: rto, MaxRTO: 16 * rto, AckDelay: 1, AckBatch: 64}
}

// ReliableStats counts the layer's work for reports and tests.
type ReliableStats struct {
	Sends       int64 // first transmissions of reliable messages
	Retransmits int64 // retransmission-timer firings that re-sent
	AcksSent    int64 // KindAck datagrams sent (each covers many seqs)
	AcksCovered int64 // sequence numbers those datagrams covered
	Delivered   int64 // reliable messages handed to the application
	DupDropped  int64 // duplicate deliveries suppressed (re-acked, not re-delivered)
}

// Reliable runs the extracted reliability layer over one Endpoint: a
// transport.Window per peer on the send side (sequence numbers,
// RTT-estimated retransmission with exponential backoff, Karn's rule,
// lazy-cancel deadline queue — the codepath internal/cluster verified),
// and idempotent receive on the other (per-peer dedup: duplicates are
// re-acked, never re-delivered) with per-connection ack coalescing.
//
// All methods must be called on the endpoint's dispatch context (the
// Handler, After callbacks, or Do closures); the transports serialize
// those, so Reliable needs no locks — on SimNet it is fully
// deterministic.
type Reliable struct {
	ep      Endpoint
	cfg     ReliableConfig
	deliver Handler
	sink    EventSink

	peers map[Addr]*relPeer
	order []Addr // peer creation order, for deterministic reports

	armSeq uint64 // arm-sequence allocator (per instance: no cross-goroutine state)

	Stats ReliableStats
}

// relPeer is the per-peer reliability state.
type relPeer struct {
	addr Addr
	w    Window[Message]

	// Retransmit-timer coverage: at most one useful After outstanding,
	// recorded by its fire time; stale fires re-establish coverage.
	retxArmed bool
	retxAt    int64

	// Idempotent receive: seqs <= floor are delivered; ahead holds the
	// out-of-order seqs beyond it.
	floor uint64
	ahead map[uint64]struct{}

	ackPend  []uint64
	ackArmed bool
}

// NewReliable wraps ep. Delivered (deduplicated, non-ack) messages go
// to deliver on the dispatch context. sink, when non-nil, receives
// send/retransmit events (the transports log recv/drop themselves).
func NewReliable(ep Endpoint, cfg ReliableConfig, deliver Handler, sink EventSink) *Reliable {
	return &Reliable{
		ep: ep, cfg: cfg.withDefaults(), deliver: deliver, sink: sink,
		peers: make(map[Addr]*relPeer),
	}
}

// AttachReliable attaches a to nw and wraps the endpoint in a Reliable
// layer. deliver receives the layer itself so handlers can reply; the
// construction cycle (the endpoint's Handler needs the layer, the layer
// needs the endpoint) is closed through a sync point, so on the
// multi-goroutine transports a datagram dispatched before construction
// finishes waits instead of racing it.
func AttachReliable(nw Network, a Addr, cfg ReliableConfig, deliver func(r *Reliable, m Message), sink EventSink) (*Reliable, Endpoint, error) {
	var r *Reliable
	ready := make(chan struct{})
	ep, err := nw.Attach(a, func(m Message) { <-ready; r.OnMessage(m) })
	if err != nil {
		return nil, nil, err
	}
	r = NewReliable(ep, cfg, func(m Message) { deliver(r, m) }, sink)
	close(ready)
	return r, ep, nil
}

func (r *Reliable) peer(a Addr) *relPeer {
	p := r.peers[a]
	if p == nil {
		p = &relPeer{addr: a, ahead: make(map[uint64]struct{})}
		p.w.Init()
		r.peers[a] = p
		r.order = append(r.order, a)
	}
	return p
}

// Send transmits m to `to` reliably: it is retransmitted on an
// RTT-estimated timeout until the peer acknowledges its sequence
// number.
func (r *Reliable) Send(to Addr, m Message) {
	p := r.peer(to)
	m.From = r.ep.Addr()
	m.To = to
	m.Seq = p.w.Assign()
	now := r.ep.Now()
	pd := p.w.Claim(m.Seq)
	*pd = Pending[Message]{
		Msg: m, Seq: m.Seq, FirstSent: now,
		RTO: p.w.NextRTO(r.cfg.InitRTO, r.cfg.MaxRTO), Tries: 1, InUse: true,
	}
	p.w.Live++
	r.Stats.Sends++
	if r.sink != nil {
		r.sink.Event(now, r.ep.Addr(), trace.EvSend, "send "+m.String())
	}
	r.ep.Send(to, m)
	r.push(p, pd, now)
	r.armRetx(p, now)
}

// push records pd's retransmit deadline in the peer's lazy-cancel queue.
// Arm sequences are per-Reliable (each instance lives on one dispatch
// context): they only disambiguate re-armed entries within that
// instance's queues, and allocation order is deterministic on SimNet.
func (r *Reliable) push(p *relPeer, pd *Pending[Message], now int64) {
	r.armSeq++
	pd.Armseq = r.armSeq
	pd.Deadline = now + pd.RTO
	p.w.TQPush(RetxEntry{Deadline: pd.Deadline, Armseq: pd.Armseq, Seq: pd.Seq})
}

// armRetx establishes timer coverage for the peer's earliest deadline:
// arm only when no outstanding timer fires early enough.
func (r *Reliable) armRetx(p *relPeer, now int64) {
	if p.w.TQLen() == 0 {
		return
	}
	head := p.w.TQHead().Deadline
	if p.retxArmed && p.retxAt <= head {
		return
	}
	p.retxArmed = true
	p.retxAt = head
	delay := head - now
	r.ep.After(delay, func() { r.fireRetx(p, head) })
}

// fireRetx services due deadlines: prune acked/re-armed entries,
// retransmit expired ones with backoff, and re-arm coverage.
func (r *Reliable) fireRetx(p *relPeer, at int64) {
	if p.retxArmed && p.retxAt == at {
		p.retxArmed = false
	}
	now := r.ep.Now()
	for p.w.TQLen() > 0 {
		e := p.w.TQHead()
		pd := p.w.Slot(e.Seq)
		if pd == nil || pd.Armseq != e.Armseq {
			p.w.TQPop() // stale: acked, or re-armed by a later retransmission
			continue
		}
		if e.Deadline > now {
			break
		}
		p.w.TQPop()
		p.w.Backoff(pd, r.cfg.MaxRTO)
		r.Stats.Retransmits++
		if r.sink != nil {
			r.sink.Event(now, r.ep.Addr(), trace.EvRetransmit,
				fmt.Sprintf("retransmit %v try=%d rto=%d", pd.Msg, pd.Tries, pd.RTO))
		}
		r.ep.Send(p.addr, pd.Msg)
		r.push(p, pd, now)
	}
	r.armRetx(p, now)
}

// OnMessage is the endpoint Handler: acks retire pending sends;
// everything else is acknowledged (coalesced) and — if not a duplicate
// — handed to the application. Wire this as the endpoint's Handler, or
// call it from one.
func (r *Reliable) OnMessage(m Message) {
	if m.Kind == KindAck {
		p := r.peer(m.From)
		now := r.ep.Now()
		for _, seq := range m.List {
			p.w.Ack(seq, now)
		}
		return
	}
	if m.Seq == 0 {
		r.deliver(m) // unreliable payload: no ack, no dedup
		return
	}
	p := r.peer(m.From)
	p.ackPend = append(p.ackPend, m.Seq)
	r.flushOrArmAcks(p)
	if r.seen(p, m.Seq) {
		r.Stats.DupDropped++
		return // duplicate: re-acked above, never re-delivered
	}
	r.Stats.Delivered++
	r.deliver(m)
}

// seen records seq in the peer's receive window, reporting whether it
// was already delivered.
func (r *Reliable) seen(p *relPeer, seq uint64) bool {
	if seq <= p.floor {
		return true
	}
	if _, dup := p.ahead[seq]; dup {
		return true
	}
	if seq == p.floor+1 {
		p.floor++
		for {
			if _, ok := p.ahead[p.floor+1]; !ok {
				break
			}
			delete(p.ahead, p.floor+1)
			p.floor++
		}
	} else {
		p.ahead[seq] = struct{}{}
	}
	return false
}

// flushOrArmAcks sends the pending acks when the batch is full,
// otherwise arms the coalescing timer.
func (r *Reliable) flushOrArmAcks(p *relPeer) {
	if len(p.ackPend) >= r.cfg.AckBatch {
		r.flushAcks(p)
		return
	}
	if p.ackArmed {
		return
	}
	p.ackArmed = true
	r.ep.After(r.cfg.AckDelay, func() {
		p.ackArmed = false
		r.flushAcks(p)
	})
}

// flushAcks coalesces every pending ack into one KindAck datagram
// (unreliable: a lost ack is regenerated by the retransmission it
// fails to suppress).
func (r *Reliable) flushAcks(p *relPeer) {
	if len(p.ackPend) == 0 {
		return
	}
	r.Stats.AcksSent++
	r.Stats.AcksCovered += int64(len(p.ackPend))
	list := make([]uint64, len(p.ackPend))
	copy(list, p.ackPend)
	p.ackPend = p.ackPend[:0]
	r.ep.Send(p.addr, Message{Kind: KindAck, List: list})
}

// Unacked returns the number of in-flight (sent, not yet acknowledged)
// reliable messages across peers.
func (r *Reliable) Unacked() int {
	total := 0
	for _, a := range r.order {
		total += r.peers[a].w.Live
	}
	return total
}

// PendingLine renders the in-flight state for stuck reports, in peer
// creation order (deterministic on SimNet).
func (r *Reliable) PendingLine() string {
	s := fmt.Sprintf("unacked=%d", r.Unacked())
	for _, a := range r.order {
		if live := r.peers[a].w.Live; live > 0 {
			s += fmt.Sprintf(" peer%d=%d", a, live)
		}
	}
	return s
}
