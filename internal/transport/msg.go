package transport

import (
	"encoding/binary"
	"fmt"
)

// Kind is the barrierd wire-message type.
type Kind uint8

// Wire message kinds. The epoch-coordination protocol (internal/barrierd)
// gives them meaning; the transport layer interprets only KindAck.
const (
	// KindAck acknowledges reliable messages: List carries the acked
	// sequence numbers (acks are batched/coalesced per connection).
	KindAck Kind = iota
	// KindJoin registers Client in Group with phaser mode Mode
	// (connection -> ingress shard -> home shard).
	KindJoin
	// KindJoinOK confirms a join: Epoch is the first epoch the member
	// owes/observes (home shard -> ingress shard -> connection).
	KindJoinOK
	// KindLeave deregisters Client from Group.
	KindLeave
	// KindArrive reports arrivals at (Group, Epoch): List carries the
	// client ids of one connection's batch (connection -> ingress shard).
	KindArrive
	// KindCombine merges arrival batches up the shard tree toward the
	// group's home shard: List carries client ids for (Group, Epoch).
	KindCombine
	// KindRelease publishes completion: every epoch <= Epoch of Group is
	// complete (home shard -> shard tree -> connections).
	KindRelease
)

// String returns the kind's wire name.
func (k Kind) String() string {
	switch k {
	case KindAck:
		return "ack"
	case KindJoin:
		return "join"
	case KindJoinOK:
		return "join-ok"
	case KindLeave:
		return "leave"
	case KindArrive:
		return "arrive"
	case KindCombine:
		return "combine"
	case KindRelease:
		return "release"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Message is one barrierd datagram. Epoch tags every payload so stale
// and early deliveries are classifiable; Seq is unique per sender and
// stable across retransmissions and network duplicates, so an ack names
// exactly one logical send and duplicate deliveries are detectable —
// the same discipline as cluster.Message, with a batch payload (List)
// so many virtual clients multiplex over one connection.
type Message struct {
	Kind   Kind
	Mode   uint8 // phaser mode for KindJoin (core.PhaserMode)
	From   Addr  // filled by the sender's endpoint/reliability layer
	To     Addr
	Group  uint32
	Client uint64 // single-client payload (join/leave/join-ok)
	Epoch  int64
	Seq    uint64   // reliable-layer sequence number (0 = unreliable)
	List   []uint64 // acked seqs (KindAck) or client ids (arrive/combine)
}

// String renders the message for event logs.
func (m Message) String() string {
	s := fmt.Sprintf("%s g=%d e=%d %d->%d seq=%d", m.Kind, m.Group, m.Epoch, m.From, m.To, m.Seq)
	if m.Kind == KindJoin || m.Kind == KindJoinOK || m.Kind == KindLeave {
		s += fmt.Sprintf(" c=%d m=%d", m.Client, m.Mode)
	}
	if len(m.List) > 0 {
		s += fmt.Sprintf(" n=%d", len(m.List))
	}
	return s
}

// AppendTo appends the canonical wire encoding of m to buf and returns
// the extended slice. The format is a 2-byte header (kind, mode)
// followed by varints: from, to, group, client, epoch (zigzag), seq,
// list length, list items. Encode/Decode round-trip exactly
// (FuzzMessageCodec pins this).
func (m Message) AppendTo(buf []byte) []byte {
	buf = append(buf, byte(m.Kind), m.Mode)
	buf = binary.AppendUvarint(buf, uint64(m.From))
	buf = binary.AppendUvarint(buf, uint64(m.To))
	buf = binary.AppendUvarint(buf, uint64(m.Group))
	buf = binary.AppendUvarint(buf, m.Client)
	buf = binary.AppendVarint(buf, m.Epoch)
	buf = binary.AppendUvarint(buf, m.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(m.List)))
	for _, v := range m.List {
		buf = binary.AppendUvarint(buf, v)
	}
	return buf
}

// Encode returns the wire encoding of m.
func (m Message) Encode() []byte { return m.AppendTo(nil) }

// Decode parses one wire message. Arbitrary input never panics: every
// read is bounds-checked, addresses are range-checked against Addr's
// width, and the list length is validated against the bytes actually
// remaining (each item takes at least one byte) before allocating.
func Decode(buf []byte) (Message, error) {
	var m Message
	if len(buf) < 2 {
		return m, fmt.Errorf("transport: short message (%d bytes)", len(buf))
	}
	m.Kind, m.Mode = Kind(buf[0]), buf[1]
	if m.Kind > KindRelease {
		return m, fmt.Errorf("transport: unknown message kind %d", buf[0])
	}
	p := buf[2:]
	next := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, fmt.Errorf("transport: truncated varint")
		}
		p = p[n:]
		return v, nil
	}
	from, err := next()
	if err != nil {
		return m, err
	}
	to, err := next()
	if err != nil {
		return m, err
	}
	if from > uint64(^Addr(0)) || to > uint64(^Addr(0)) {
		return m, fmt.Errorf("transport: address out of range (%d -> %d)", from, to)
	}
	m.From, m.To = Addr(from), Addr(to)
	g, err := next()
	if err != nil {
		return m, err
	}
	if g > 0xFFFFFFFF {
		return m, fmt.Errorf("transport: group id %d out of range", g)
	}
	m.Group = uint32(g)
	if m.Client, err = next(); err != nil {
		return m, err
	}
	e, n := binary.Varint(p)
	if n <= 0 {
		return m, fmt.Errorf("transport: truncated epoch")
	}
	p = p[n:]
	m.Epoch = e
	if m.Seq, err = next(); err != nil {
		return m, err
	}
	ln, err := next()
	if err != nil {
		return m, err
	}
	if ln > uint64(len(p)) {
		return m, fmt.Errorf("transport: list length %d exceeds %d remaining bytes", ln, len(p))
	}
	if ln > 0 {
		m.List = make([]uint64, ln)
		for i := range m.List {
			if m.List[i], err = next(); err != nil {
				return m, err
			}
		}
	}
	if len(p) != 0 {
		return m, fmt.Errorf("transport: %d trailing bytes", len(p))
	}
	return m, nil
}
