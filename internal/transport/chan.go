package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// rtItem is one unit of work on a real-time endpoint's dispatch queue:
// either a delivered message or an injected closure (Do / fired timer).
type rtItem struct {
	m     Message
	fn    func()
	isMsg bool
}

// rtEndpoint is the shared dispatch machinery of the real-time
// transports (ChanNet, UDPNet): one goroutine drains a queue, so
// message handlers, timers and injected closures are serialized exactly
// as on the simulator. Closures are enqueued blocking (they carry
// protocol obligations and must not be lost); messages are enqueued
// non-blocking — a full queue drops the datagram, which is the
// transport's loss model and exactly what the reliability layer exists
// to absorb.
type rtEndpoint struct {
	addr     Addr
	h        Handler
	clock    func() int64
	transmit func(m Message)

	q    chan rtItem
	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup

	drops atomic.Int64 // queue-overflow losses at this endpoint
}

func newRTEndpoint(addr Addr, h Handler, qcap int, clock func() int64, transmit func(Message)) *rtEndpoint {
	if qcap <= 0 {
		qcap = 1 << 14
	}
	ep := &rtEndpoint{
		addr: addr, h: h, clock: clock, transmit: transmit,
		q: make(chan rtItem, qcap), done: make(chan struct{}),
	}
	ep.wg.Add(1)
	go ep.loop()
	return ep
}

func (ep *rtEndpoint) loop() {
	defer ep.wg.Done()
	for {
		select {
		case it := <-ep.q:
			if it.isMsg {
				ep.h(it.m)
			} else {
				it.fn()
			}
		case <-ep.done:
			return
		}
	}
}

// enqueueMsg delivers a datagram, dropping on overflow or after close.
func (ep *rtEndpoint) enqueueMsg(m Message) {
	select {
	case <-ep.done:
	default:
		select {
		case ep.q <- rtItem{m: m, isMsg: true}:
		default:
			ep.drops.Add(1)
		}
	}
}

// enqueueFn injects a closure; blocks rather than drop, and is a no-op
// after close.
func (ep *rtEndpoint) enqueueFn(fn func()) {
	select {
	case ep.q <- rtItem{fn: fn}:
	case <-ep.done:
	}
}

func (ep *rtEndpoint) Addr() Addr { return ep.addr }
func (ep *rtEndpoint) Now() int64 { return ep.clock() }

func (ep *rtEndpoint) After(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	time.AfterFunc(time.Duration(delay), func() { ep.enqueueFn(fn) })
}

func (ep *rtEndpoint) Do(fn func()) { ep.enqueueFn(fn) }

func (ep *rtEndpoint) Send(to Addr, m Message) {
	m.From = ep.addr
	m.To = to
	ep.transmit(m)
}

func (ep *rtEndpoint) Close() error {
	ep.once.Do(func() { close(ep.done) })
	ep.wg.Wait()
	return nil
}

// ChanNet is the in-process real-time Network: endpoints are dispatch
// goroutines, datagrams move by queue handoff, and the clock is
// nanoseconds since construction. Loss exists (queue overflow), so the
// reliability layer is exercised for real; there is no artificial
// latency beyond scheduling. This is the transport the million-client
// load runs use.
type ChanNet struct {
	mu    sync.RWMutex
	eps   map[Addr]*rtEndpoint
	start time.Time
	qcap  int
}

// NewChanNet builds an in-process network; queueCap bounds each
// endpoint's dispatch queue (<= 0 uses the 16384 default).
func NewChanNet(queueCap int) *ChanNet {
	return &ChanNet{eps: make(map[Addr]*rtEndpoint), start: time.Now(), qcap: queueCap}
}

// Attach registers an endpoint and starts its dispatch loop.
func (n *ChanNet) Attach(a Addr, h Handler) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.eps[a]; dup {
		return nil, fmt.Errorf("transport: chan address %d already attached", a)
	}
	ep := newRTEndpoint(a, h, n.qcap, n.now, func(m Message) { n.send(m) })
	n.eps[a] = ep
	return ep, nil
}

func (n *ChanNet) now() int64 { return time.Since(n.start).Nanoseconds() }

func (n *ChanNet) send(m Message) {
	n.mu.RLock()
	dst := n.eps[m.To]
	n.mu.RUnlock()
	if dst == nil {
		return // unattached address: datagram lost
	}
	dst.enqueueMsg(m)
}

// Drops returns the total queue-overflow losses across endpoints.
func (n *ChanNet) Drops() int64 {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var total int64
	for _, ep := range n.eps {
		total += ep.drops.Load()
	}
	return total
}

// Close shuts every endpoint down.
func (n *ChanNet) Close() error {
	n.mu.Lock()
	eps := n.eps
	n.eps = make(map[Addr]*rtEndpoint)
	n.mu.Unlock()
	for _, ep := range eps {
		ep.Close()
	}
	return nil
}
