package transport

import (
	"container/heap"
	"fmt"

	"fuzzybarrier/internal/trace"
)

// SimConfig describes the simulated links — the same loss model as
// internal/cluster's network: every transmission independently draws
// latency (base + uniform jitter), a drop outcome and a duplication
// outcome from the run's seeded RNG. Jitter alone yields reordering.
type SimConfig struct {
	Latency  int64   // base one-way latency, ticks (default 1)
	Jitter   int64   // uniform extra latency in [0, Jitter]
	DropRate float64 // probability a transmission is lost
	DupRate  float64 // probability a transmission is delivered twice

	Seed uint64

	LogEvents bool            // record the textual event log (EventLog)
	Recorder  *trace.Recorder // optional event recording (nil = off)
}

// SimNet is the deterministic virtual-time Network: a single-threaded
// discrete-event loop with (at, seq)-ordered events and a seeded fault
// model. A fixed (SimConfig, workload) replays byte-identically — the
// transcript guarantee TestBarrierdSimByteIdenticalTranscript pins for
// the whole barrierd stack, extending the cluster simulator's
// TestSameSeedByteIdenticalEventLog to the extracted reliability layer.
//
// The driving goroutine owns the loop: Attach endpoints, inject initial
// work with Endpoint.Do, then Run. Endpoint callbacks run inside Run;
// Do/After from outside the loop are only safe before Run or between
// Run calls.
type SimNet struct {
	cfg  SimConfig
	now  int64
	eseq uint64
	h    simHeap
	eps  map[Addr]*simEndpoint
	rng  *rng

	log     []string
	wantLog bool

	// Fault counters, mirroring cluster.Sim's.
	Sent, Dropped, Duped, Delivered int64
}

// NewSimNet builds a simulated network.
func NewSimNet(cfg SimConfig) *SimNet {
	if cfg.Latency < 1 {
		cfg.Latency = 1
	}
	if cfg.Jitter < 0 {
		cfg.Jitter = 0
	}
	return &SimNet{
		cfg:     cfg,
		eps:     make(map[Addr]*simEndpoint),
		rng:     newRNG(mix(cfg.Seed, 0x7A57E9)),
		wantLog: cfg.LogEvents || cfg.Recorder != nil,
	}
}

type simEvent struct {
	at  int64
	seq uint64
	fn  func()
}

type simHeap []*simEvent

func (h simHeap) Len() int { return len(h) }
func (h simHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h simHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *simHeap) Push(x any)   { *h = append(*h, x.(*simEvent)) }
func (h *simHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Attach registers an endpoint.
func (s *SimNet) Attach(a Addr, h Handler) (Endpoint, error) {
	if _, dup := s.eps[a]; dup {
		return nil, fmt.Errorf("transport: sim address %d already attached", a)
	}
	ep := &simEndpoint{net: s, addr: a, h: h}
	s.eps[a] = ep
	return ep, nil
}

// Close discards all endpoints and pending events.
func (s *SimNet) Close() error {
	s.eps = make(map[Addr]*simEndpoint)
	s.h = nil
	return nil
}

// Now returns the current virtual time.
func (s *SimNet) Now() int64 { return s.now }

// EventLog returns the recorded log lines (empty unless LogEvents).
func (s *SimNet) EventLog() []string { return s.log }

// schedule queues fn after delay ticks (clamped to now).
func (s *SimNet) schedule(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.eseq++
	heap.Push(&s.h, &simEvent{at: s.now + delay, seq: s.eseq, fn: fn})
}

// Step executes the next event; false when the queue is empty.
func (s *SimNet) Step() bool {
	if s.h.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.h).(*simEvent)
	s.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue drains, done() reports true, or
// maxTicks of virtual time elapse (<= 0 means no budget). It returns
// the virtual time reached and whether done() was satisfied.
func (s *SimNet) Run(maxTicks int64, done func() bool) (int64, bool) {
	for {
		if done != nil && done() {
			return s.now, true
		}
		if s.h.Len() == 0 {
			return s.now, done == nil
		}
		if maxTicks > 0 && s.h[0].at > maxTicks {
			return s.now, false
		}
		s.Step()
	}
}

// Event implements EventSink on the simulator's transcript.
func (s *SimNet) Event(now int64, a Addr, kind trace.EventKind, msg string) {
	if rec := s.cfg.Recorder; rec != nil {
		rec.EventKind(now, int(a), kind, msg)
	}
	if s.cfg.LogEvents {
		s.log = append(s.log, fmt.Sprintf("t=%-8d a%-6d %-14s %s", now, a, kind, msg))
	}
}

// send runs the fault model for one transmission.
func (s *SimNet) send(m Message) {
	s.Sent++
	copies := 1
	if s.cfg.DupRate > 0 && s.rng.float() < s.cfg.DupRate {
		copies = 2
		s.Duped++
	}
	for c := 0; c < copies; c++ {
		if s.cfg.DropRate > 0 && s.rng.float() < s.cfg.DropRate {
			s.Dropped++
			if s.wantLog {
				s.Event(s.now, m.From, trace.EvDrop, "drop "+m.String())
			}
			continue
		}
		delay := s.cfg.Latency
		if s.cfg.Jitter > 0 {
			delay += s.rng.intN(s.cfg.Jitter + 1)
		}
		s.schedule(delay, func() { s.deliver(m) })
	}
}

// deliver hands one transmission to its destination (silently dropped
// when the address is unattached or closed, like a real datagram).
func (s *SimNet) deliver(m Message) {
	ep, ok := s.eps[m.To]
	if !ok || ep.closed {
		return
	}
	s.Delivered++
	if s.wantLog {
		s.Event(s.now, m.To, trace.EvRecv, "recv "+m.String())
	}
	ep.h(m)
}

// simEndpoint is one attached participant of the virtual-time network.
type simEndpoint struct {
	net    *SimNet
	addr   Addr
	h      Handler
	closed bool
}

func (ep *simEndpoint) Addr() Addr { return ep.addr }
func (ep *simEndpoint) Now() int64 { return ep.net.now }

func (ep *simEndpoint) After(delay int64, fn func()) {
	ep.net.schedule(delay, func() {
		if !ep.closed {
			fn()
		}
	})
}

func (ep *simEndpoint) Do(fn func()) { ep.After(0, fn) }

func (ep *simEndpoint) Send(to Addr, m Message) {
	if ep.closed {
		return
	}
	m.From = ep.addr
	m.To = to
	ep.net.send(m)
}

func (ep *simEndpoint) Close() error {
	ep.closed = true
	return nil
}
