// Package transport is the datagram fabric the barrierd service runs
// on: one coordinator codebase, three interchangeable ways to move its
// messages.
//
// The package splits the problem the way internal/cluster's simulator
// proved out:
//
//   - A Network is an *unreliable* datagram layer. It may drop,
//     duplicate, delay and reorder. Three implementations are provided:
//     SimNet (the deterministic seeded lossy network of
//     internal/cluster, in virtual time), ChanNet (in-process queues in
//     real time), and UDPNet (real sockets on loopback or beyond).
//   - Window is the *reliability* layer extracted from
//     internal/cluster/node.go's outbox: per-sender sequence numbers,
//     Jacobson/Karels RTT-estimated retransmission (stats.RTTEstimator)
//     with exponential backoff and Karn's rule, and the lazy-cancel
//     retransmit timer queue. internal/cluster now runs on this exact
//     code, so the simulator's exhaustively tested behaviour and the
//     server's are one codepath.
//   - Reliable composes a Window per peer with idempotent receive
//     (per-sender dedup, duplicates re-acked but never re-delivered)
//     and per-connection ack batching: acks are coalesced into one
//     KindAck message carrying many sequence numbers instead of one
//     datagram each.
//
// The execution contract every Network provides is what lets one
// protocol implementation run unmodified everywhere: all callbacks of
// one Endpoint — message delivery, After timers, injected Do closures —
// are serialized. Protocol state needs no locks; it is single-threaded
// per endpoint, exactly like a cluster.Proto under the simulator.
// Clock units are the transport's own (virtual ticks on SimNet,
// nanoseconds on ChanNet/UDPNet); reliability timeouts are configured
// in those units.
package transport

import (
	"sync"

	"fuzzybarrier/internal/trace"
)

// Addr identifies one endpoint on a Network. Address assignment is by
// convention: barrierd gives shards small addresses and client
// connections addresses at ConnAddrBase and above.
type Addr uint32

// ConnAddrBase is the first address barrierd uses for client
// connections; everything below is a coordinator shard.
const ConnAddrBase Addr = 1 << 16

// Handler consumes one delivered datagram on the endpoint's serialized
// dispatch context.
type Handler func(m Message)

// Endpoint is one attached participant.
//
// Send is unreliable: the datagram may be dropped, duplicated, delayed
// or reordered (even ChanNet drops when a receiver's queue overflows —
// that is its loss model). After schedules fn on this endpoint's
// dispatch context; there is no cancel, so protocol code re-checks its
// deadline when fn fires (lazy cancel, as the cluster engines do). Do
// injects a closure into the dispatch context from any goroutine — it
// is the only Endpoint method safe to call from outside a callback.
type Endpoint interface {
	Addr() Addr
	// Now returns the endpoint's clock in transport units (virtual
	// ticks on SimNet, nanoseconds since Network start otherwise).
	Now() int64
	After(delay int64, fn func())
	Send(to Addr, m Message)
	Do(fn func())
	Close() error
}

// Network attaches endpoints. Implementations: SimNet, ChanNet, UDPNet.
type Network interface {
	Attach(a Addr, h Handler) (Endpoint, error)
	Close() error
}

// EventSink receives transport-level events (send, recv, retransmit,
// drop) for transcripts and traces. SimNet implements it natively (its
// append-only log is the byte-identical replay artifact); real-time
// networks use LockedSink to fan the same events into a trace.Recorder
// safely from concurrent endpoint loops.
type EventSink interface {
	Event(now int64, a Addr, kind trace.EventKind, msg string)
}

// LockedSink is a mutex-guarded EventSink over a trace.Recorder, for
// the real-time transports whose endpoints dispatch concurrently.
type LockedSink struct {
	mu  sync.Mutex
	rec *trace.Recorder
}

// NewLockedSink wraps rec; a nil rec yields a nil sink (disabled).
func NewLockedSink(rec *trace.Recorder) *LockedSink {
	if rec == nil {
		return nil
	}
	return &LockedSink{rec: rec}
}

// Event records one transport event on the recorder's event stream.
func (s *LockedSink) Event(now int64, a Addr, kind trace.EventKind, msg string) {
	s.mu.Lock()
	s.rec.EventKind(now, int(a), kind, msg)
	s.mu.Unlock()
}
