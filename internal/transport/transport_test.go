package transport

import (
	"sync"
	"testing"
	"time"
)

// runEcho drives the same reliable request/response workload over any
// Network: endpoint 1 sends n KindArrive messages to endpoint 2, which
// echoes each back as a KindRelease. Both directions run through
// Reliable. Returns (requests delivered at 2, responses delivered at 1).
func runEcho(t *testing.T, nw Network, n int, wait func(done func() bool) bool) (int, int) {
	t.Helper()
	var mu sync.Mutex
	gotReq, gotResp := 0, 0
	rcfg := ReliableConfig{InitRTO: int64(20 * time.Millisecond), MaxRTO: int64(200 * time.Millisecond), AckDelay: int64(time.Millisecond), AckBatch: 32}
	if _, sim := nw.(*SimNet); sim {
		rcfg = SimReliable(2, 4)
	}
	ra, epA, err := AttachReliable(nw, 1, rcfg, func(_ *Reliable, m Message) {
		mu.Lock()
		gotResp++
		mu.Unlock()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = AttachReliable(nw, 2, rcfg, func(r *Reliable, m Message) {
		mu.Lock()
		gotReq++
		mu.Unlock()
		r.Send(1, Message{Kind: KindRelease, Group: m.Group, Epoch: m.Epoch})
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	epA.Do(func() {
		for i := 0; i < n; i++ {
			ra.Send(2, Message{Kind: KindArrive, Group: 1, Epoch: int64(i)})
		}
	})
	done := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return gotReq >= n && gotResp >= n
	}
	if !wait(done) {
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("echo did not complete: req=%d resp=%d of %d", gotReq, gotResp, n)
	}
	mu.Lock()
	defer mu.Unlock()
	return gotReq, gotResp
}

// waitRealtime polls done for the real-time transports.
func waitRealtime(done func() bool) bool {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if done() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return done()
}

func TestEchoAcrossTransports(t *testing.T) {
	const n = 100
	t.Run("sim", func(t *testing.T) {
		nw := NewSimNet(SimConfig{Latency: 2, Jitter: 4, DropRate: 0.2, DupRate: 0.1, Seed: 5})
		defer nw.Close()
		req, resp := runEcho(t, nw, n, func(done func() bool) bool {
			_, ok := nw.Run(10_000_000, done)
			return ok
		})
		if req != n || resp != n {
			t.Fatalf("exactly-once violated: req=%d resp=%d", req, resp)
		}
	})
	t.Run("chan", func(t *testing.T) {
		nw := NewChanNet(0)
		defer nw.Close()
		req, resp := runEcho(t, nw, n, waitRealtime)
		if req != n || resp != n {
			t.Fatalf("exactly-once violated: req=%d resp=%d", req, resp)
		}
	})
	t.Run("udp", func(t *testing.T) {
		nw := NewUDPNet(0)
		defer nw.Close()
		req, resp := runEcho(t, nw, n, waitRealtime)
		if req != n || resp != n {
			t.Fatalf("exactly-once violated: req=%d resp=%d", req, resp)
		}
	})
}

// TestUDPRouteLearning: only the client knows the server's address up
// front; the server must learn the client's route from its first
// datagram's source address to reply at all.
func TestUDPRouteLearning(t *testing.T) {
	// Two independent UDPNets = two "processes": routes are not shared.
	srvNet := NewUDPNet(0)
	defer srvNet.Close()
	cliNet := NewUDPNet(0)
	defer cliNet.Close()

	var got []Message
	var mu sync.Mutex
	rcfg := RealtimeReliable()
	var rs *Reliable
	ready := make(chan struct{})
	srvEP, srvAddr, err := srvNet.AttachListen(1, func(m Message) { <-ready; rs.OnMessage(m) }, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs = NewReliable(srvEP, rcfg, func(m Message) {
		rs.Send(m.From, Message{Kind: KindJoinOK, Client: m.Client, Epoch: 7})
	}, nil)
	close(ready)

	rc, cliEP, err := AttachReliable(cliNet, ConnAddrBase, rcfg, func(_ *Reliable, m Message) {
		mu.Lock()
		got = append(got, m)
		mu.Unlock()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cliNet.Register(1, srvAddr.String()); err != nil {
		t.Fatal(err)
	}
	cliEP.Do(func() { rc.Send(1, Message{Kind: KindJoin, Client: 42}) })
	ok := waitRealtime(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) >= 1
	})
	if !ok {
		t.Fatal("server reply never arrived — route learning failed")
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].Kind != KindJoinOK || got[0].Client != 42 || got[0].Epoch != 7 {
		t.Fatalf("bad reply: %v", got[0])
	}
}

// TestChanNetOverflowDrops: a stalled endpoint's queue overflows and
// drops datagrams rather than blocking the sender — the loss model the
// reliability layer absorbs.
func TestChanNetOverflowDrops(t *testing.T) {
	nw := NewChanNet(4)
	defer nw.Close()
	block := make(chan struct{})
	first := make(chan struct{})
	var once sync.Once
	_, err := nw.Attach(2, func(m Message) {
		once.Do(func() { close(first) })
		<-block // stall the dispatch loop
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := nw.Attach(1, func(m Message) {})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		ep.Send(2, Message{Kind: KindArrive, Seq: uint64(i + 1)})
	}
	<-first
	close(block)
	if nw.Drops() == 0 {
		t.Fatal("64 sends into a capacity-4 stalled queue produced no drops")
	}
}
