package transport

import "fuzzybarrier/internal/stats"

// This file is the reliability layer extracted from
// internal/cluster/node.go's outbox, generalized over the message type
// so the cluster simulator (cluster.Message) and the barrierd service
// (transport.Message) run the *same* verified code: the pending ring,
// the Jacobson/Karels RTO policy with Karn's rule, exponential backoff,
// and the lazy-cancel retransmission timer queue. Only the timer *host*
// differs per environment — the cluster engines arm heap events, the
// real-time transports arm Endpoint.After — and each host keeps exactly
// the arming discipline it had.

// Pending is one unacked reliable send. The embedded bookkeeping mirrors
// cluster's pendingMsg field for field; Seq duplicates the sequence
// number out of the message payload so the ring is message-type
// agnostic.
type Pending[M any] struct {
	Msg       M
	Seq       uint64
	FirstSent int64
	RTO       int64
	Deadline  int64  // current retransmit deadline (deadline-queue hosts)
	Armseq    uint64 // sequence consumed when that deadline was armed
	Tries     int
	InUse     bool
}

// RetxEntry is one armed deadline in a per-window timer queue, ordered
// by (Deadline, Armseq); Seq names the message the deadline guards.
type RetxEntry struct {
	Deadline int64
	Armseq   uint64
	Seq      uint64
}

// RetxLess is the timer-queue ordering: earliest deadline first,
// arm-sequence breaking ties in arming order.
func RetxLess(a, b RetxEntry) bool {
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	return a.Armseq < b.Armseq
}

// Window is the reliable-send state for one (sender, peer) direction:
// each logical send keeps a Pending record until the matching ack
// returns; a timer retransmits on a Jacobson/Karels-estimated RTO with
// exponential backoff. Retransmissions reuse the original sequence
// number, so the receiver's ack matches whichever copy got through and
// duplicates are harmless.
//
// Pending records live in a power-of-two ring indexed by sequence
// number (seq & mask), recycled in place — no map, no per-send
// allocation. The ring grows only while the in-flight window exceeds
// its previous high-water mark.
type Window[M any] struct {
	NextSeq uint64 // last assigned sequence number
	RTT     stats.RTTEstimator
	Live    int // pending (unacked) messages, for stuck reports

	slots []Pending[M] // ring keyed by Seq & mask
	mask  uint64

	tq []RetxEntry // min-heap on (Deadline, Armseq); lazily pruned
}

// NewWindow returns a ready Window with the initial 8-slot ring.
func NewWindow[M any]() *Window[M] {
	w := &Window[M]{}
	w.Init()
	return w
}

// Init prepares a zero-value Window (for embedding).
func (w *Window[M]) Init() {
	w.slots = make([]Pending[M], 8)
	w.mask = 7
}

// Assign consumes and returns the next sequence number.
func (w *Window[M]) Assign() uint64 {
	w.NextSeq++
	return w.NextSeq
}

// Slot returns the live pending record for seq, or nil.
func (w *Window[M]) Slot(seq uint64) *Pending[M] {
	p := &w.slots[seq&w.mask]
	if p.InUse && p.Seq == seq {
		return p
	}
	return nil
}

// Claim returns a free ring slot for seq, growing the ring past its
// high-water mark if the in-flight window collides.
func (w *Window[M]) Claim(seq uint64) *Pending[M] {
	for w.slots[seq&w.mask].InUse {
		w.grow()
	}
	return &w.slots[seq&w.mask]
}

// grow doubles the ring until every live record (and by construction
// any newly claimed seq) lands in a distinct slot.
func (w *Window[M]) grow() {
	size := len(w.slots)
	for {
		size *= 2
		ns := make([]Pending[M], size)
		nm := uint64(size - 1)
		ok := true
		for i := range w.slots {
			p := &w.slots[i]
			if !p.InUse {
				continue
			}
			j := p.Seq & nm
			if ns[j].InUse {
				ok = false
				break
			}
			ns[j] = *p
		}
		if ok {
			w.slots, w.mask = ns, nm
			return
		}
	}
}

// Ack retires a pending message, reporting whether seq was live. Only
// never-retransmitted messages contribute RTT samples (Karn's rule: a
// retransmitted message's ack is ambiguous about which copy it
// answers). Armed timers are cancelled lazily: the record is simply
// freed, and any timer still pointing at it is skipped when it fires.
func (w *Window[M]) Ack(seq uint64, now int64) bool {
	p := w.Slot(seq)
	if p == nil {
		return false // duplicate ack
	}
	if p.Tries == 1 {
		w.RTT.Observe(float64(now - p.FirstSent))
	}
	p.InUse = false
	w.Live--
	return true
}

// Backoff doubles p's RTO for its next retransmission, capped at maxRTO.
func (w *Window[M]) Backoff(p *Pending[M], maxRTO int64) {
	p.Tries++
	p.RTO *= 2
	if p.RTO > maxRTO {
		p.RTO = maxRTO
	}
}

// NextRTO returns the current retransmission timeout: the estimator's
// recommendation plus one tick of clock granularity (without it, a
// jitter-free link converges to RTO == RTT exactly and every ack ties
// with its own retransmission timer), clamped to [initRTO/4, maxRTO];
// initRTO before any sample.
func (w *Window[M]) NextRTO(initRTO, maxRTO int64) int64 {
	est := int64(w.RTT.RTO())
	if est <= 0 {
		return initRTO
	}
	est++
	if min := initRTO / 4; est < min {
		est = min
	}
	if est < 1 {
		est = 1
	}
	if est > maxRTO {
		est = maxRTO
	}
	return est
}

// TQLen returns the timer queue's length.
func (w *Window[M]) TQLen() int { return len(w.tq) }

// TQHead returns the queue's minimum entry; TQLen must be positive.
func (w *Window[M]) TQHead() RetxEntry { return w.tq[0] }

// TQPush adds one deadline to the per-window timer min-heap.
func (w *Window[M]) TQPush(e RetxEntry) {
	w.tq = append(w.tq, e)
	c := len(w.tq) - 1
	for c > 0 {
		p := (c - 1) / 2
		if !RetxLess(w.tq[c], w.tq[p]) {
			break
		}
		w.tq[c], w.tq[p] = w.tq[p], w.tq[c]
		c = p
	}
}

// TQPop removes the minimum deadline.
func (w *Window[M]) TQPop() {
	last := len(w.tq) - 1
	w.tq[0] = w.tq[last]
	w.tq = w.tq[:last]
	n := last
	c := 0
	for {
		l, r := 2*c+1, 2*c+2
		if l >= n {
			break
		}
		m := l
		if r < n && RetxLess(w.tq[r], w.tq[l]) {
			m = r
		}
		if !RetxLess(w.tq[m], w.tq[c]) {
			break
		}
		w.tq[c], w.tq[m] = w.tq[m], w.tq[c]
		c = m
	}
}
