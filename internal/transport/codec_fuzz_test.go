package transport

import (
	"bytes"
	"reflect"
	"testing"
)

// codecSeeds covers each kind, boundary values for every field, and an
// empty/large List — the seed corpus FuzzMessageCodec starts from.
var codecSeeds = []Message{
	{},
	{Kind: KindAck, List: []uint64{1, 2, 3, 1 << 40}},
	{Kind: KindJoin, Mode: 2, From: 7, To: ConnAddrBase + 3, Group: 42, Client: 1 << 63, Epoch: -1},
	{Kind: KindJoinOK, From: ConnAddrBase, To: 1, Group: 0xFFFFFFFF, Client: 0, Epoch: 1 << 40},
	{Kind: KindLeave, Mode: 1, Client: 12345, Epoch: 9},
	{Kind: KindArrive, Group: 9, Epoch: 3, Seq: 1, List: []uint64{0}},
	{Kind: KindCombine, Group: 1, Epoch: -1 << 40, Seq: 1 << 62, List: make([]uint64, 300)},
	{Kind: KindRelease, From: ^Addr(0), To: ^Addr(0), Epoch: 1<<63 - 1, Seq: ^uint64(0)},
}

func TestMessageCodecRoundTrip(t *testing.T) {
	for i, m := range codecSeeds {
		enc := m.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("seed %d (%v): Decode failed: %v", i, m, err)
		}
		if !messagesEqual(m, got) {
			t.Fatalf("seed %d: round-trip mismatch:\n sent %#v\n got  %#v", i, m, got)
		}
		// Re-encoding the decoded message must be byte-identical (the
		// encoding is canonical).
		if re := got.Encode(); !bytes.Equal(enc, re) {
			t.Fatalf("seed %d: re-encode differs: % x vs % x", i, enc, re)
		}
	}
}

func TestDecodeRejectsTruncationsAndTrailing(t *testing.T) {
	m := codecSeeds[1] // ack with a list
	enc := m.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("Decode accepted truncation to %d/%d bytes", cut, len(enc))
		}
	}
	if _, err := Decode(append(append([]byte{}, enc...), 0)); err == nil {
		t.Fatal("Decode accepted trailing bytes")
	}
	if _, err := Decode([]byte{byte(KindRelease) + 1, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Fatal("Decode accepted unknown kind")
	}
	// A list length claiming more items than remaining bytes must be
	// rejected before allocation.
	huge := []byte{byte(KindAck), 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}
	if _, err := Decode(huge); err == nil {
		t.Fatal("Decode accepted oversized list length")
	}
}

// FuzzMessageCodec pins the codec's two safety properties: Decode never
// panics on arbitrary bytes, and any input it accepts re-encodes to a
// message that round-trips (Decode(Encode(Decode(p))) == Decode(p)).
func FuzzMessageCodec(f *testing.F) {
	for _, m := range codecSeeds {
		f.Add(m.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Add([]byte{0, 0, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02})
	f.Fuzz(func(t *testing.T, p []byte) {
		m, err := Decode(p)
		if err != nil {
			return
		}
		enc := m.Encode()
		m2, err := Decode(enc)
		if err != nil {
			t.Fatalf("accepted input re-encoded to undecodable bytes: %v (msg %#v)", err, m)
		}
		if !messagesEqual(m, m2) {
			t.Fatalf("round-trip mismatch: %#v vs %#v", m, m2)
		}
		// Canonical inputs must be stable under decode+encode.
		if bytes.Equal(p, enc) {
			return
		}
		if bytes.Equal(enc, m2.Encode()) {
			return
		}
		t.Fatalf("re-encoding not canonical for %#v", m)
	})
}

// messagesEqual treats nil and empty List as equal (the wire format
// cannot distinguish them).
func messagesEqual(a, b Message) bool {
	if len(a.List) == 0 && len(b.List) == 0 {
		a.List, b.List = nil, nil
	}
	return reflect.DeepEqual(a, b)
}
