// Package mem models the shared-memory system of the simulated
// multiprocessor: a flat word-addressed shared memory, optional private
// per-processor caches (timing-only), interleaved memory modules that
// serialize concurrent accesses, and hot-spot accounting in the sense of
// Yew, Tzeng and Lawrie (the paper's reference [4]).
//
// The cache is a *timing* model: data always lives in the shared word
// array, so the simulator never observes stale values; a cache hit or miss
// only changes how many cycles an access takes. This is the standard
// simplification for synchronization studies — the paper uses cache misses
// purely as a source of execution-rate drift between processors, which a
// timing-only model reproduces exactly.
package mem

import (
	"fmt"
	"sort"
)

// Config describes a memory system.
type Config struct {
	// Words is the size of shared memory in 64-bit words.
	Words int
	// Procs is the number of processors (one private cache each).
	Procs int

	// HitLatency is the cycle cost of a cache hit (>= 1).
	HitLatency int64
	// MissLatency is the cycle cost of a cache miss (>= HitLatency).
	MissLatency int64

	// CacheLines is the number of direct-mapped lines per private cache;
	// 0 disables caching (every access costs MissLatency).
	CacheLines int
	// LineWords is the number of words per cache line (power of two).
	LineWords int

	// Modules is the number of interleaved memory modules; concurrent
	// accesses to the same module queue behind each other. 0 or 1 means a
	// single module (worst-case hot-spot behaviour); a value >= Procs
	// approximates a conflict-free network for uniform traffic.
	Modules int
	// ModuleBusy is how many cycles one access occupies its module.
	ModuleBusy int64

	// MissEveryN, when > 0, deterministically forces every N-th access by
	// a processor to miss, creating the bounded execution-rate drift the
	// fuzzy barrier is designed to tolerate (Section 1). The forcing is
	// per processor and offset by the processor index so processors drift
	// relative to each other.
	MissEveryN int
}

// DefaultConfig returns a small, fast memory system suitable for tests:
// single-cycle hits, 8-cycle misses, 64-line caches, Procs modules.
func DefaultConfig(procs, words int) Config {
	return Config{
		Words:       words,
		Procs:       procs,
		HitLatency:  1,
		MissLatency: 8,
		CacheLines:  64,
		LineWords:   4,
		Modules:     procs,
		ModuleBusy:  1,
	}
}

func (c *Config) normalize() {
	if c.Words <= 0 {
		c.Words = 1 << 16
	}
	if c.Procs <= 0 {
		c.Procs = 1
	}
	if c.HitLatency <= 0 {
		c.HitLatency = 1
	}
	if c.MissLatency < c.HitLatency {
		c.MissLatency = c.HitLatency
	}
	if c.LineWords <= 0 {
		c.LineWords = 1
	}
	if c.Modules <= 0 {
		c.Modules = 1
	}
	if c.ModuleBusy <= 0 {
		c.ModuleBusy = 1
	}
}

// Stats aggregates memory-system activity.
type Stats struct {
	Accesses    int64 // total reads+writes+atomics
	Reads       int64
	Writes      int64
	Atomics     int64
	Hits        int64
	Misses      int64
	ForcedMiss  int64 // misses injected by MissEveryN
	QueueDelay  int64 // total cycles spent waiting for a busy module
	Invalidates int64 // lines invalidated in other caches by writes
}

type cacheLine struct {
	valid bool
	tag   int64
}

type cache struct {
	lines     []cacheLine
	lineWords int64
	accesses  int64 // per-processor access counter for MissEveryN
}

func (c *cache) lookup(addr int64) (idx int, tag int64, hit bool) {
	line := addr / c.lineWords
	idx = int(line % int64(len(c.lines)))
	tag = line
	hit = c.lines[idx].valid && c.lines[idx].tag == tag
	return idx, tag, hit
}

// System is a shared-memory model. It is not safe for concurrent use; the
// cycle-level simulator drives it from a single goroutine.
type System struct {
	cfg        Config
	words      []int64
	caches     []*cache
	moduleFree []int64 // cycle at which each module becomes free
	addrCounts map[int64]int64
	stats      Stats
}

// New creates a memory system. Invalid config fields are normalized to
// safe defaults.
func New(cfg Config) *System {
	cfg.normalize()
	s := &System{
		cfg:        cfg,
		words:      make([]int64, cfg.Words),
		moduleFree: make([]int64, cfg.Modules),
		addrCounts: make(map[int64]int64),
	}
	if cfg.CacheLines > 0 {
		s.caches = make([]*cache, cfg.Procs)
		for i := range s.caches {
			s.caches[i] = &cache{
				lines:     make([]cacheLine, cfg.CacheLines),
				lineWords: int64(cfg.LineWords),
			}
		}
	}
	return s
}

// Config returns the (normalized) configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns a copy of the accumulated statistics.
func (s *System) Stats() Stats { return s.stats }

// Poke stores a value without modeling timing — for loading initial data.
func (s *System) Poke(addr int64, v int64) error {
	if addr < 0 || addr >= int64(len(s.words)) {
		return fmt.Errorf("mem: poke address %d out of range [0,%d)", addr, len(s.words))
	}
	s.words[addr] = v
	return nil
}

// Peek loads a value without modeling timing — for inspecting results.
func (s *System) Peek(addr int64) (int64, error) {
	if addr < 0 || addr >= int64(len(s.words)) {
		return 0, fmt.Errorf("mem: peek address %d out of range [0,%d)", addr, len(s.words))
	}
	return s.words[addr], nil
}

// MustPeek is Peek that panics on a bad address; for tests.
func (s *System) MustPeek(addr int64) int64 {
	v, err := s.Peek(addr)
	if err != nil {
		panic(err)
	}
	return v
}

func (s *System) checkAddr(addr int64) error {
	if addr < 0 || addr >= int64(len(s.words)) {
		return fmt.Errorf("mem: address %d out of range [0,%d)", addr, len(s.words))
	}
	return nil
}

// latency computes the access latency for proc touching addr, updating
// cache state. Atomic accesses bypass the cache.
func (s *System) latency(proc int, addr int64, write, atomic bool) int64 {
	if atomic {
		// Atomics bypass the issuing cache but still invalidate everyone
		// else's copy of the line — the read-modify-write owns it.
		s.invalidateOthers(proc, addr)
		s.stats.Misses++
		return s.cfg.MissLatency
	}
	if s.caches == nil || proc < 0 || proc >= len(s.caches) {
		s.stats.Misses++
		return s.cfg.MissLatency
	}
	c := s.caches[proc]
	c.accesses++
	forced := s.cfg.MissEveryN > 0 &&
		(c.accesses+int64(proc))%int64(s.cfg.MissEveryN) == 0
	idx, tag, hit := c.lookup(addr)
	if hit && !forced {
		s.stats.Hits++
		if write {
			s.invalidateOthers(proc, addr)
		}
		return s.cfg.HitLatency
	}
	if forced {
		s.stats.ForcedMiss++
		c.lines[idx] = cacheLine{} // forced misses also evict
	}
	s.stats.Misses++
	c.lines[idx] = cacheLine{valid: true, tag: tag}
	if write {
		s.invalidateOthers(proc, addr)
	}
	return s.cfg.MissLatency
}

// invalidateOthers models write-invalidate snooping: a write by proc
// invalidates the line in every other cache, so subsequent reads there
// miss. This is what makes repeated polling of a shared flag expensive —
// the hot-spot behaviour of software barriers.
func (s *System) invalidateOthers(proc int, addr int64) {
	for p, c := range s.caches {
		if p == proc || c == nil {
			continue
		}
		idx, tag, hit := c.lookup(addr)
		if hit && c.lines[idx].tag == tag {
			c.lines[idx].valid = false
			s.stats.Invalidates++
		}
	}
}

// schedule serializes the access through addr's memory module and returns
// the cycle at which the module work begins.
func (s *System) schedule(addr, now int64) int64 {
	m := addr % int64(len(s.moduleFree))
	start := now
	if s.moduleFree[m] > start {
		s.stats.QueueDelay += s.moduleFree[m] - start
		start = s.moduleFree[m]
	}
	s.moduleFree[m] = start + s.cfg.ModuleBusy
	return start
}

// Read performs a timed read. It returns the value and the cycle at which
// the value is available.
func (s *System) Read(proc int, addr, now int64) (val, done int64, err error) {
	if err := s.checkAddr(addr); err != nil {
		return 0, now, err
	}
	s.stats.Accesses++
	s.stats.Reads++
	s.addrCounts[addr]++
	start := s.schedule(addr, now)
	lat := s.latency(proc, addr, false, false)
	return s.words[addr], start + lat, nil
}

// Write performs a timed write, returning the completion cycle.
func (s *System) Write(proc int, addr, val, now int64) (done int64, err error) {
	if err := s.checkAddr(addr); err != nil {
		return now, err
	}
	s.stats.Accesses++
	s.stats.Writes++
	s.addrCounts[addr]++
	start := s.schedule(addr, now)
	lat := s.latency(proc, addr, true, false)
	s.words[addr] = val
	return start + lat, nil
}

// FetchAdd atomically adds delta to the word at addr, returning the old
// value and the completion cycle. Atomics bypass the cache and serialize
// at the memory module, which is why counter-based software barriers hot
// spot.
func (s *System) FetchAdd(proc int, addr, delta, now int64) (old, done int64, err error) {
	if err := s.checkAddr(addr); err != nil {
		return 0, now, err
	}
	s.stats.Accesses++
	s.stats.Atomics++
	s.addrCounts[addr]++
	start := s.schedule(addr, now)
	lat := s.latency(proc, addr, true, true)
	old = s.words[addr]
	s.words[addr] = old + delta
	return old, start + lat, nil
}

// AddrCount pairs an address with how many timed accesses touched it.
type AddrCount struct {
	Addr  int64
	Count int64
}

// HotSpots returns the k most-accessed addresses in descending order of
// access count — the experiment harness uses this to show that software
// barriers concentrate traffic on a handful of shared words while the
// hardware fuzzy barrier generates no memory traffic at all.
func (s *System) HotSpots(k int) []AddrCount {
	all := make([]AddrCount, 0, len(s.addrCounts))
	for a, c := range s.addrCounts {
		all = append(all, AddrCount{Addr: a, Count: c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Addr < all[j].Addr
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

// MaxAddrCount returns the single highest access count (0 if none) — a
// scalar hot-spot metric for tables.
func (s *System) MaxAddrCount() int64 {
	var m int64
	for _, c := range s.addrCounts {
		if c > m {
			m = c
		}
	}
	return m
}
