package mem

import (
	"testing"
	"testing/quick"
)

func basic(procs int) Config {
	return Config{
		Words: 256, Procs: procs,
		HitLatency: 1, MissLatency: 10,
		CacheLines: 4, LineWords: 2,
		Modules: 1, ModuleBusy: 1,
	}
}

func TestPokePeek(t *testing.T) {
	s := New(basic(1))
	if err := s.Poke(5, 42); err != nil {
		t.Fatal(err)
	}
	v, err := s.Peek(5)
	if err != nil || v != 42 {
		t.Fatalf("peek = %d, %v", v, err)
	}
	if err := s.Poke(-1, 0); err == nil {
		t.Error("negative poke accepted")
	}
	if _, err := s.Peek(1 << 20); err == nil {
		t.Error("out-of-range peek accepted")
	}
}

func TestReadWriteSemantics(t *testing.T) {
	s := New(basic(2))
	done, err := s.Write(0, 10, 99, 0)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Errorf("write done = %d, want > 0", done)
	}
	v, _, err := s.Read(1, 10, done)
	if err != nil {
		t.Fatal(err)
	}
	if v != 99 {
		t.Errorf("read = %d, want 99", v)
	}
}

func TestColdMissThenHit(t *testing.T) {
	s := New(basic(1))
	_, done1, err := s.Read(0, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lat := done1 - 0; lat != 10 {
		t.Errorf("cold read latency = %d, want 10 (miss)", lat)
	}
	_, done2, err := s.Read(0, 8, done1)
	if err != nil {
		t.Fatal(err)
	}
	if lat := done2 - done1; lat != 1 {
		t.Errorf("warm read latency = %d, want 1 (hit)", lat)
	}
	// Same line, different word: also a hit (LineWords=2, addr 9).
	_, done3, err := s.Read(0, 9, done2)
	if err != nil {
		t.Fatal(err)
	}
	if lat := done3 - done2; lat != 1 {
		t.Errorf("same-line read latency = %d, want 1", lat)
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 2 hits 1 miss", st)
	}
}

func TestCacheConflictEviction(t *testing.T) {
	s := New(basic(1)) // 4 lines of 2 words: addresses 0 and 16 collide (line 0 and 8 mod 4=0)
	now := int64(0)
	_, now, _ = s.Read(0, 0, now)  // miss, fills line 0
	_, now, _ = s.Read(0, 16, now) // line 8 maps to slot 0: evicts
	_, done, _ := s.Read(0, 0, now)
	if lat := done - now; lat != 10 {
		t.Errorf("post-eviction read latency = %d, want 10", lat)
	}
}

func TestWriteInvalidatesOtherCaches(t *testing.T) {
	s := New(basic(2))
	now := int64(0)
	_, now, _ = s.Read(0, 8, now) // P0 caches line
	_, now, _ = s.Read(1, 8, now) // P1 caches line
	_, _ = s.Write(1, 8, 5, now)  // P1 writes: invalidates P0's copy
	_, done, _ := s.Read(0, 8, now+20)
	if lat := done - (now + 20); lat != 10 {
		t.Errorf("read after remote write latency = %d, want 10 (invalidated)", lat)
	}
	if s.Stats().Invalidates == 0 {
		t.Error("no invalidations recorded")
	}
}

func TestModuleQueueing(t *testing.T) {
	cfg := basic(2)
	cfg.CacheLines = 0 // uncached: every access goes to the module
	cfg.ModuleBusy = 5
	s := New(cfg)
	// Two simultaneous accesses to the same module must serialize.
	_, d0, _ := s.Read(0, 7, 100)
	_, d1, _ := s.Read(1, 7, 100)
	if d1 < d0+5 {
		t.Errorf("second access done at %d, want >= %d (queued)", d1, d0+5)
	}
	if s.Stats().QueueDelay == 0 {
		t.Error("queue delay not recorded")
	}
}

func TestInterleavedModulesAvoidQueueing(t *testing.T) {
	cfg := basic(2)
	cfg.CacheLines = 0
	cfg.Modules = 4
	cfg.ModuleBusy = 5
	s := New(cfg)
	_, d0, _ := s.Read(0, 0, 100) // module 0
	_, d1, _ := s.Read(1, 1, 100) // module 1
	if d0 != d1 {
		t.Errorf("different modules should not interfere: %d vs %d", d0, d1)
	}
	if s.Stats().QueueDelay != 0 {
		t.Error("unexpected queue delay across distinct modules")
	}
}

func TestFetchAddAtomicityAndBypass(t *testing.T) {
	s := New(basic(2))
	old, _, err := s.FetchAdd(0, 3, 5, 0)
	if err != nil || old != 0 {
		t.Fatalf("faa1 = %d, %v", old, err)
	}
	old, _, err = s.FetchAdd(1, 3, 5, 10)
	if err != nil || old != 5 {
		t.Fatalf("faa2 = %d, %v", old, err)
	}
	if s.MustPeek(3) != 10 {
		t.Errorf("mem[3] = %d, want 10", s.MustPeek(3))
	}
	if s.Stats().Atomics != 2 {
		t.Errorf("atomics = %d, want 2", s.Stats().Atomics)
	}
}

func TestForcedMissDrift(t *testing.T) {
	cfg := basic(1)
	cfg.MissEveryN = 3
	s := New(cfg)
	now := int64(0)
	misses := 0
	for i := 0; i < 12; i++ {
		_, done, err := s.Read(0, 8, now)
		if err != nil {
			t.Fatal(err)
		}
		if done-now == 10 {
			misses++
		}
		now = done
	}
	// First access is a cold miss; after that every 3rd access is forced.
	if misses < 4 {
		t.Errorf("forced misses = %d, want >= 4", misses)
	}
	if s.Stats().ForcedMiss == 0 {
		t.Error("forced misses not recorded")
	}
}

func TestHotSpots(t *testing.T) {
	s := New(basic(2))
	for i := 0; i < 10; i++ {
		s.Read(0, 5, int64(i*10))
	}
	for i := 0; i < 3; i++ {
		s.Read(0, 9, int64(i*10))
	}
	hs := s.HotSpots(2)
	if len(hs) != 2 || hs[0].Addr != 5 || hs[0].Count != 10 {
		t.Errorf("hot spots = %+v", hs)
	}
	if s.MaxAddrCount() != 10 {
		t.Errorf("max addr count = %d, want 10", s.MaxAddrCount())
	}
}

func TestConfigNormalization(t *testing.T) {
	s := New(Config{}) // everything zero: must not panic, sane defaults
	if s.Config().Words <= 0 || s.Config().HitLatency <= 0 || s.Config().Modules <= 0 {
		t.Errorf("normalized config = %+v", s.Config())
	}
	if _, _, err := s.Read(0, 0, 0); err != nil {
		t.Fatal(err)
	}
}

// TestValuesSurviveTimingModel: whatever the cache and module timing do,
// the value read is always the last value written (timing-only caches).
func TestValuesSurviveTimingModel(t *testing.T) {
	f := func(ops []uint16, seed uint8) bool {
		cfg := basic(4)
		cfg.MissEveryN = int(seed%5) + 2
		s := New(cfg)
		ref := make(map[int64]int64)
		now := int64(0)
		for i, op := range ops {
			addr := int64(op % 64)
			proc := int(op>>6) % 4
			switch (int(seed) + i) % 3 {
			case 0:
				done, err := s.Write(proc, addr, int64(i), now)
				if err != nil {
					return false
				}
				ref[addr] = int64(i)
				now = done
			case 1:
				v, done, err := s.Read(proc, addr, now)
				if err != nil {
					return false
				}
				if v != ref[addr] {
					return false
				}
				now = done
			case 2:
				old, done, err := s.FetchAdd(proc, addr, 2, now)
				if err != nil {
					return false
				}
				if old != ref[addr] {
					return false
				}
				ref[addr] += 2
				now = done
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestCompletionTimesMonotone: for a single processor issuing
// back-to-back accesses, completion times never go backwards.
func TestCompletionTimesMonotone(t *testing.T) {
	f := func(addrs []uint8) bool {
		s := New(basic(1))
		now := int64(0)
		for _, a := range addrs {
			_, done, err := s.Read(0, int64(a)%256, now)
			if err != nil || done < now {
				return false
			}
			now = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAtomicsInvalidateOtherCaches(t *testing.T) {
	s := New(basic(2))
	now := int64(0)
	_, now, _ = s.Read(0, 8, now)           // P0 caches the line
	_, now, err := s.FetchAdd(1, 8, 1, now) // P1's atomic owns it
	if err != nil {
		t.Fatal(err)
	}
	_, done, _ := s.Read(0, 8, now+5)
	if lat := done - (now + 5); lat != 10 {
		t.Errorf("read after remote atomic latency = %d, want 10 (invalidated)", lat)
	}
}

func TestAtomicsUncachedSystemSafe(t *testing.T) {
	cfg := basic(2)
	cfg.CacheLines = 0
	s := New(cfg)
	if _, _, err := s.FetchAdd(0, 3, 1, 0); err != nil {
		t.Fatal(err)
	}
}
