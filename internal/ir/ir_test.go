package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOperandStrings(t *testing.T) {
	cases := map[string]Operand{
		"T7": Temp(7),
		"j":  Var("j"),
		"42": Const(42),
		"-3": Const(-3),
		"P":  Base("P"),
	}
	for want, op := range cases {
		if got := op.String(); got != want {
			t.Errorf("%+v.String() = %q, want %q", op, got, want)
		}
	}
	if !(Operand{}).IsZero() {
		t.Error("zero operand not IsZero")
	}
	if Temp(0).IsZero() {
		t.Error("T0 reported zero")
	}
}

func TestInstrStringsPaperStyle(t *testing.T) {
	cases := map[string]Instr{
		"T1 = j + 1":         {Op: Add, Dst: Temp(1), A: Var("j"), B: Const(1)},
		"T3 = T2 + P":        {Op: Add, Dst: Temp(3), A: Temp(2), B: Base("P")},
		"T11 = [T5]":         {Op: Load, Dst: Temp(11), A: Temp(5)},
		"[T28] = T24":        {Op: Store, Dst: Temp(28), B: Temp(24)},
		"k = k + 1":          {Op: Add, Dst: Var("k"), A: Var("k"), B: Const(1)},
		"if k <= 20 goto L1": {Op: IfGoto, A: Var("k"), B: Const(20), Rel: LE, Target: "L1"},
		"goto L1":            {Op: Goto, Target: "L1"},
		"L1:":                {Op: Label, Target: "L1"},
		"i = 1":              {Op: Assign, Dst: Var("i"), A: Const(1)},
		"T2 = 12 * i":        {Op: Mul, Dst: Temp(2), A: Const(12), B: Var("i")},
		"T24 = T23 / 4":      {Op: Div, Dst: Temp(24), A: Temp(23), B: Const(4)},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
	withComment := Instr{Op: Assign, Dst: Var("i"), A: Const(1), Comment: "init"}
	if got := withComment.String(); !strings.Contains(got, "/* init */") {
		t.Errorf("comment missing: %q", got)
	}
}

func TestDefsUses(t *testing.T) {
	in := Instr{Op: Add, Dst: Temp(3), A: Temp(1), B: Var("x")}
	d, ok := in.Defs()
	if !ok || d != Temp(3) {
		t.Errorf("Defs = %v, %v", d, ok)
	}
	uses := in.Uses()
	if len(uses) != 2 || uses[0] != Temp(1) || uses[1] != Var("x") {
		t.Errorf("Uses = %v", uses)
	}
	// Stores define memory, not an operand; they use address and value.
	st := Instr{Op: Store, Dst: Temp(5), B: Temp(6)}
	if _, ok := st.Defs(); ok {
		t.Error("store should not def an operand")
	}
	if uses := st.Uses(); len(uses) != 2 {
		t.Errorf("store uses = %v, want addr+value", uses)
	}
	// Constants are not uses.
	c := Instr{Op: Add, Dst: Temp(0), A: Const(1), B: Const(2)}
	if uses := c.Uses(); len(uses) != 0 {
		t.Errorf("const uses = %v, want none", uses)
	}
	// Control classification.
	for _, in := range []Instr{{Op: Goto}, {Op: IfGoto}, {Op: Label}} {
		if !in.IsControl() {
			t.Errorf("%v should be control", in.Op)
		}
	}
	if (Instr{Op: Load}).IsControl() {
		t.Error("load misclassified as control")
	}
}

func TestRelNegate(t *testing.T) {
	pairs := map[Rel]Rel{LT: GE, LE: GT, GT: LE, GE: LT, EQ: NE, NE: EQ}
	for r, want := range pairs {
		if got := r.Negate(); got != want {
			t.Errorf("%v.Negate() = %v, want %v", r, got, want)
		}
		if got := r.Negate().Negate(); got != r {
			t.Errorf("double negate of %v = %v", r, got)
		}
	}
}

func TestBlockValidate(t *testing.T) {
	good := Block{
		{Op: Assign, Dst: Var("x"), A: Const(1)},
		{Op: IfGoto, A: Var("x"), B: Const(2), Rel: LT, Target: "L"},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("trailing control rejected: %v", err)
	}
	bad := Block{
		{Op: Goto, Target: "L"},
		{Op: Assign, Dst: Var("x"), A: Const(1)},
	}
	if err := bad.Validate(); err == nil {
		t.Error("interior control accepted")
	}
}

func TestProgramStatsAndRendering(t *testing.T) {
	p := &Program{Name: "demo", Code: []Instr{
		{Op: Assign, Dst: Var("k"), A: Const(1), Barrier: true},
		{Op: Label, Target: "L1", Barrier: true},
		{Op: Load, Dst: Temp(0), A: Temp(9), Marked: true},
		{Op: Store, Dst: Temp(9), B: Temp(0), Marked: true},
		{Op: Add, Dst: Var("k"), A: Var("k"), B: Const(1), Barrier: true},
		{Op: IfGoto, A: Var("k"), B: Const(10), Rel: LE, Target: "L1", Barrier: true},
	}}
	st := p.Stats()
	if st.Total != 5 { // label excluded
		t.Errorf("total = %d, want 5", st.Total)
	}
	if st.Barrier != 3 || st.NonBarrier != 2 || st.Marked != 2 {
		t.Errorf("stats = %+v", st)
	}
	out := p.String()
	for _, want := range []string{"Barrier:", "Non-barrier:", "L1:", "* "} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	if p.Temps() != 10 {
		t.Errorf("temps = %d, want 10 (T9 is max)", p.Temps())
	}
	vars := p.Vars()
	if len(vars) != 1 || vars[0] != "k" {
		t.Errorf("vars = %v", vars)
	}
}

func TestProgramBases(t *testing.T) {
	p := &Program{Code: []Instr{
		{Op: Add, Dst: Temp(0), A: Temp(1), B: Base("P")},
		{Op: Add, Dst: Temp(2), A: Temp(3), B: Base("Q")},
		{Op: Add, Dst: Temp(4), A: Temp(5), B: Base("P")},
	}}
	bases := p.Bases()
	if len(bases) != 2 || bases[0] != "P" || bases[1] != "Q" {
		t.Errorf("bases = %v", bases)
	}
}

// TestUsesNeverContainConstants is a property over arbitrary instructions.
func TestUsesNeverContainConstants(t *testing.T) {
	f := func(op uint8, dk, ak, bk uint8, id int16) bool {
		mk := func(k uint8) Operand {
			switch k % 4 {
			case 0:
				return Temp(int(id) & 0xFF)
			case 1:
				return Var("v")
			case 2:
				return Const(int64(id))
			default:
				return Base("B")
			}
		}
		in := Instr{Op: Op(op % 12), Dst: mk(dk), A: mk(ak), B: mk(bk)}
		for _, u := range in.Uses() {
			if u.Kind == KindConst || u.Kind == KindBase || u.Kind == KindNone {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMarkedCount(t *testing.T) {
	b := Block{
		{Op: Load, Dst: Temp(0), A: Temp(1), Marked: true},
		{Op: Add, Dst: Temp(2), A: Temp(0), B: Const(1)},
		{Op: Store, Dst: Temp(1), B: Temp(2), Marked: true},
	}
	if got := b.MarkedCount(); got != 2 {
		t.Errorf("marked = %d, want 2", got)
	}
}
