// Package ir defines the three-address intermediate code the paper's
// compiler examples use (Figure 4): temporaries T1, T2, ..., scalar
// variables, explicit address arithmetic, and bracketed loads/stores
// ("T11 = [T5] + [T10]", "[T28] = T24").
//
// The compiler front end (internal/lang + internal/compiler) lowers loop
// nests to this form; the dependence DAG and the three-phase reordering of
// Section 4 operate on it; codegen lowers it to internal/isa machine code
// with barrier-region bits.
package ir

import "fmt"

// OperandKind classifies an instruction operand.
type OperandKind int

// Operand kinds.
const (
	KindNone  OperandKind = iota
	KindTemp              // compiler temporary Tn
	KindVar               // named scalar variable (i, j, k, ...)
	KindConst             // integer literal
	KindBase              // array base address symbol (the "P" of "T3 = T2 + P")
)

// Operand is a value referenced by a TAC instruction.
type Operand struct {
	Kind OperandKind
	ID   int    // temp number (KindTemp)
	Name string // variable or base symbol name (KindVar, KindBase)
	Val  int64  // literal value (KindConst)
}

// Temp returns a temporary operand Tn.
func Temp(n int) Operand { return Operand{Kind: KindTemp, ID: n} }

// Var returns a named scalar operand.
func Var(name string) Operand { return Operand{Kind: KindVar, Name: name} }

// Const returns a literal operand.
func Const(v int64) Operand { return Operand{Kind: KindConst, Val: v} }

// Base returns an array base-address operand.
func Base(name string) Operand { return Operand{Kind: KindBase, Name: name} }

// IsZero reports whether the operand is unset.
func (o Operand) IsZero() bool { return o.Kind == KindNone }

// String renders the operand in the paper's notation.
func (o Operand) String() string {
	switch o.Kind {
	case KindTemp:
		return fmt.Sprintf("T%d", o.ID)
	case KindVar:
		return o.Name
	case KindConst:
		return fmt.Sprintf("%d", o.Val)
	case KindBase:
		return o.Name
	}
	return "?"
}

// Op is a TAC operation.
type Op int

// TAC operations.
const (
	Nop    Op = iota
	Assign    // Dst = A
	Add       // Dst = A + B
	Sub       // Dst = A - B
	Mul       // Dst = A * B
	Div       // Dst = A / B
	Mod       // Dst = A % B
	Load      // Dst = [A]
	Store     // [A] = B
	Goto      // goto Target
	IfGoto    // if A Rel B goto Target
	Label     // Target:
)

// String returns the operator symbol for arithmetic ops.
func (op Op) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Mod:
		return "%"
	}
	return fmt.Sprintf("Op(%d)", int(op))
}

// IsArith reports whether op is a binary arithmetic operation.
func (op Op) IsArith() bool {
	switch op {
	case Add, Sub, Mul, Div, Mod:
		return true
	}
	return false
}

// Rel is a comparison operator for IfGoto.
type Rel int

// Comparison operators.
const (
	LT Rel = iota
	LE
	GT
	GE
	EQ
	NE
)

// String renders the comparison operator.
func (r Rel) String() string {
	switch r {
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	case EQ:
		return "=="
	case NE:
		return "!="
	}
	return fmt.Sprintf("Rel(%d)", int(r))
}

// Negate returns the complementary comparison.
func (r Rel) Negate() Rel {
	switch r {
	case LT:
		return GE
	case LE:
		return GT
	case GT:
		return LE
	case GE:
		return LT
	case EQ:
		return NE
	case NE:
		return EQ
	}
	return r
}

// Instr is one TAC instruction.
//
// Marked flags the instructions that must stay in the non-barrier region:
// those that "either access a value computed by another processor or
// compute a value that will be accessed by another processor" (Section 4).
// Barrier flags membership in a barrier region; it is assigned by region
// construction and carried through to machine code.
type Instr struct {
	Op      Op
	Dst     Operand // result (Assign/arith/Load); address for Store
	A       Operand // first source; address for Load
	B       Operand // second source; value for Store
	Rel     Rel     // IfGoto comparison
	Target  string  // label name (Goto/IfGoto/Label)
	Marked  bool
	Barrier bool
	Comment string
}

// String renders the instruction in the paper's style.
func (in Instr) String() string {
	body := func() string {
		switch in.Op {
		case Nop:
			return "nop"
		case Assign:
			return fmt.Sprintf("%s = %s", in.Dst, in.A)
		case Add, Sub, Mul, Div, Mod:
			return fmt.Sprintf("%s = %s %s %s", in.Dst, in.A, in.Op, in.B)
		case Load:
			return fmt.Sprintf("%s = [%s]", in.Dst, in.A)
		case Store:
			return fmt.Sprintf("[%s] = %s", in.Dst, in.B)
		case Goto:
			return fmt.Sprintf("goto %s", in.Target)
		case IfGoto:
			return fmt.Sprintf("if %s %s %s goto %s", in.A, in.Rel, in.B, in.Target)
		case Label:
			return in.Target + ":"
		}
		return "?"
	}()
	if in.Comment != "" {
		return body + "    /* " + in.Comment + " */"
	}
	return body
}

// Defs returns the operand the instruction defines, if any. Stores define
// memory, not an operand; see WritesMemory.
func (in Instr) Defs() (Operand, bool) {
	switch in.Op {
	case Assign, Add, Sub, Mul, Div, Mod, Load:
		return in.Dst, true
	}
	return Operand{}, false
}

// Uses returns the operands the instruction reads.
func (in Instr) Uses() []Operand {
	var out []Operand
	add := func(o Operand) {
		if o.Kind == KindTemp || o.Kind == KindVar {
			out = append(out, o)
		}
	}
	switch in.Op {
	case Assign:
		add(in.A)
	case Add, Sub, Mul, Div, Mod:
		add(in.A)
		add(in.B)
	case Load:
		add(in.A)
	case Store:
		add(in.Dst) // address
		add(in.B)   // value
	case IfGoto:
		add(in.A)
		add(in.B)
	}
	return out
}

// ReadsMemory reports whether the instruction loads from memory.
func (in Instr) ReadsMemory() bool { return in.Op == Load }

// WritesMemory reports whether the instruction stores to memory.
func (in Instr) WritesMemory() bool { return in.Op == Store }

// IsControl reports whether the instruction affects control flow (or is a
// label): control instructions pin the ends of straight-line segments and
// are never reordered across.
func (in Instr) IsControl() bool {
	switch in.Op {
	case Goto, IfGoto, Label:
		return true
	}
	return false
}
