package ir

import (
	"fmt"
	"strings"
)

// Block is a straight-line TAC sequence (no internal labels or branches),
// the unit the dependence DAG and the Section 4 reorderer operate on.
type Block []Instr

// Validate checks that the block really is straight-line except that a
// trailing control instruction is permitted (a loop's back-edge branch).
func (b Block) Validate() error {
	for i, in := range b {
		if in.IsControl() && i != len(b)-1 {
			return fmt.Errorf("ir: control instruction %q at %d inside straight-line block", in, i)
		}
	}
	return nil
}

// String renders the block one instruction per line.
func (b Block) String() string {
	var sb strings.Builder
	for _, in := range b {
		sb.WriteString("    ")
		sb.WriteString(in.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// MarkedCount returns the number of marked instructions.
func (b Block) MarkedCount() int {
	n := 0
	for _, in := range b {
		if in.Marked {
			n++
		}
	}
	return n
}

// Program is a complete TAC instruction sequence with labels.
type Program struct {
	Name string
	Code []Instr
}

// String renders the program with barrier-region banners in the style of
// Figure 4: alternating "Non-barrier:" and "Barrier:" sections derived
// from the instructions' Barrier flags.
func (p *Program) String() string {
	var sb strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&sb, "/* %s */\n", p.Name)
	}
	section := -1 // -1 unknown, 0 non-barrier, 1 barrier
	for _, in := range p.Code {
		want := 0
		if in.Barrier {
			want = 1
		}
		if want != section {
			section = want
			if want == 1 {
				sb.WriteString("Barrier:\n")
			} else {
				sb.WriteString("Non-barrier:\n")
			}
		}
		if in.Op == Label {
			fmt.Fprintf(&sb, "%s\n", in)
			continue
		}
		mark := " "
		if in.Marked {
			mark = "*"
		}
		fmt.Fprintf(&sb, "  %s %s\n", mark, in)
	}
	return sb.String()
}

// RegionStats describes the barrier/non-barrier split of a program — the
// quantity Figure 4 compares before and after reordering.
type RegionStats struct {
	Total      int // executable instructions (labels excluded)
	Barrier    int
	NonBarrier int
	Marked     int
}

// Stats computes RegionStats.
func (p *Program) Stats() RegionStats {
	var s RegionStats
	for _, in := range p.Code {
		if in.Op == Label {
			continue
		}
		s.Total++
		if in.Barrier {
			s.Barrier++
		} else {
			s.NonBarrier++
		}
		if in.Marked {
			s.Marked++
		}
	}
	return s
}

// Temps returns the highest temporary number used plus one (the size of
// the temp space).
func (p *Program) Temps() int {
	max := -1
	scan := func(o Operand) {
		if o.Kind == KindTemp && o.ID > max {
			max = o.ID
		}
	}
	for _, in := range p.Code {
		scan(in.Dst)
		scan(in.A)
		scan(in.B)
	}
	return max + 1
}

// Vars returns the distinct scalar variable names referenced, in first-use
// order.
func (p *Program) Vars() []string {
	seen := make(map[string]bool)
	var out []string
	scan := func(o Operand) {
		if o.Kind == KindVar && !seen[o.Name] {
			seen[o.Name] = true
			out = append(out, o.Name)
		}
	}
	for _, in := range p.Code {
		scan(in.Dst)
		scan(in.A)
		scan(in.B)
	}
	return out
}

// Bases returns the distinct array base symbols referenced, in first-use
// order.
func (p *Program) Bases() []string {
	seen := make(map[string]bool)
	var out []string
	scan := func(o Operand) {
		if o.Kind == KindBase && !seen[o.Name] {
			seen[o.Name] = true
			out = append(out, o.Name)
		}
	}
	for _, in := range p.Code {
		scan(in.Dst)
		scan(in.A)
		scan(in.B)
	}
	return out
}
