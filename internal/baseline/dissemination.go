package baseline

import "sync/atomic"

// Dissemination is the dissemination barrier (Hensgen, Finkel & Manber;
// Mellor-Crummey & Scott): ⌈log2 n⌉ rounds in which participant i signals
// participant (i + 2^r) mod n and waits for its own flag. Every
// participant spins on a distinct local flag, so there are no hot spots,
// and the critical path is logarithmic — the best software case the
// paper's Section 1 acknowledges.
//
// Flags are per-(participant, round) epoch counters rather than
// booleans, which removes the need for sense-reversal resets.
type Dissemination struct {
	n        int
	rounds   int
	flags    [][]atomic.Int64 // [participant][round] signal counters
	state    []dissState
	spins    atomic.Int64
	episodes atomic.Int64
}

type dissState struct {
	epoch int64
	_     pad
}

// NewDissemination creates a dissemination barrier for n participants.
func NewDissemination(n int) *Dissemination {
	checkN(n)
	rounds := ceilLog2(n)
	if rounds == 0 {
		rounds = 1 // n == 1: a single self-round keeps the code uniform
	}
	b := &Dissemination{n: n, rounds: rounds, state: make([]dissState, n)}
	b.flags = make([][]atomic.Int64, n)
	for i := range b.flags {
		b.flags[i] = make([]atomic.Int64, rounds)
	}
	return b
}

// Await implements Barrier.
func (b *Dissemination) Await(id int) {
	checkID(id, b.n)
	st := &b.state[id]
	st.epoch++
	target := st.epoch
	for r := 0; r < b.rounds; r++ {
		partner := (id + (1 << uint(r))) % b.n
		b.flags[partner][r].Add(1)
		f := &b.flags[id][r]
		b.spins.Add(spinWait(func() bool { return f.Load() >= target }))
	}
	if id == 0 {
		b.episodes.Add(1)
	}
}

// N implements Barrier.
func (b *Dissemination) N() int { return b.n }

// Name implements Barrier.
func (b *Dissemination) Name() string { return "dissemination" }

// Spins implements Barrier.
func (b *Dissemination) Spins() int64 { return b.spins.Load() }

// Episodes implements Barrier.
func (b *Dissemination) Episodes() int64 { return b.episodes.Load() }

// Rounds returns the number of communication rounds per episode.
func (b *Dissemination) Rounds() int { return b.rounds }
