package baseline

import (
	"fmt"
	"sort"

	"fuzzybarrier/internal/core"
)

// New constructs a barrier by name. Known names: "central",
// "sense-reversing", "tree", "dissemination", "tournament", and "fuzzy"
// (a core.FuzzyBarrier used as a point barrier, for apples-to-apples
// comparisons).
func New(name string, n int) (Barrier, error) {
	switch name {
	case "central":
		return NewCentral(n), nil
	case "sense-reversing":
		return NewSenseReversing(n), nil
	case "tree":
		return NewTree(n, 4), nil
	case "dissemination":
		return NewDissemination(n), nil
	case "tournament":
		return NewTournament(n), nil
	case "fuzzy":
		return NewFuzzyPoint(n), nil
	}
	return nil, fmt.Errorf("baseline: unknown barrier %q", name)
}

// Names returns the known barrier names in stable order.
func Names() []string {
	names := []string{"central", "sense-reversing", "tree", "dissemination", "tournament", "fuzzy"}
	sort.Strings(names)
	return names
}

// FuzzyPoint adapts core.FuzzyBarrier to the Barrier interface by using it
// as a point barrier (empty barrier region). Its split-phase API remains
// available through Inner.
type FuzzyPoint struct {
	inner *core.FuzzyBarrier
}

// NewFuzzyPoint wraps a fresh fuzzy barrier for n participants.
func NewFuzzyPoint(n int) *FuzzyPoint {
	return &FuzzyPoint{inner: core.NewFuzzyBarrier(n)}
}

// Inner exposes the wrapped fuzzy barrier.
func (b *FuzzyPoint) Inner() *core.FuzzyBarrier { return b.inner }

// Await implements Barrier.
func (b *FuzzyPoint) Await(id int) {
	checkID(id, b.inner.N())
	b.inner.Await()
}

// N implements Barrier.
func (b *FuzzyPoint) N() int { return b.inner.N() }

// Name implements Barrier.
func (b *FuzzyPoint) Name() string { return "fuzzy" }

// Spins implements Barrier.
func (b *FuzzyPoint) Spins() int64 {
	_, _, _, _, _, spinIters := b.inner.Stats()
	return spinIters
}

// Episodes implements Barrier.
func (b *FuzzyPoint) Episodes() int64 {
	syncs, _, _, _, _, _ := b.inner.Stats()
	return syncs
}
