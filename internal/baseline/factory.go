package baseline

import (
	"fmt"
	"sort"

	"fuzzybarrier/internal/core"
)

// New constructs a barrier by name. Known names: "central",
// "sense-reversing", "tree", "dissemination", "tournament", "fuzzy"
// (a core.FuzzyBarrier used as a point barrier, for apples-to-apples
// comparisons), "fuzzy-tree" (the combining-tree core.TreeBarrier,
// likewise as a point barrier), "fuzzy-reduce" (the value-carrying
// core.ReduceBarrier with a sum reduction, paying the allreduce combine
// on every episode), and "hier" (the two-level sharded
// core.HierBarrier with its GOMAXPROCS-derived layout).
func New(name string, n int) (Barrier, error) {
	switch name {
	case "central":
		return NewCentral(n), nil
	case "sense-reversing":
		return NewSenseReversing(n), nil
	case "tree":
		return NewTree(n, 4), nil
	case "dissemination":
		return NewDissemination(n), nil
	case "tournament":
		return NewTournament(n), nil
	case "fuzzy":
		return NewFuzzyPoint(n), nil
	case "fuzzy-tree":
		return NewSplitPoint("fuzzy-tree", core.NewTreeBarrier(n)), nil
	case "fuzzy-reduce":
		return NewSplitPoint("fuzzy-reduce", core.NewReduceBarrier(n, core.OpSum, core.IdentitySum)), nil
	case "hier":
		return NewSplitPoint("hier", core.NewHierBarrier(n)), nil
	}
	return nil, fmt.Errorf("baseline: unknown barrier %q", name)
}

// Names returns the known barrier names in stable order.
func Names() []string {
	names := []string{"central", "sense-reversing", "tree", "dissemination", "tournament", "fuzzy", "fuzzy-tree", "fuzzy-reduce", "hier"}
	sort.Strings(names)
	return names
}

// SplitNames returns the names that are split-phase (fuzzy) barriers —
// the subset whose Inner exposes Arrive/Wait for region workloads.
func SplitNames() []string { return []string{"fuzzy", "fuzzy-tree", "fuzzy-reduce", "hier"} }

// NewSplit constructs a runtime split-phase barrier by split name.
func NewSplit(name string, n int) (core.SplitBarrier, error) {
	switch name {
	case "fuzzy":
		return core.NewFuzzyBarrier(n), nil
	case "fuzzy-tree":
		return core.NewTreeBarrier(n), nil
	case "fuzzy-reduce":
		return core.NewReduceBarrier(n, core.OpSum, core.IdentitySum), nil
	case "hier":
		return core.NewHierBarrier(n), nil
	}
	return nil, fmt.Errorf("baseline: unknown split barrier %q", name)
}

// SplitPoint adapts any core.SplitBarrier to the Barrier interface by
// using it as a point barrier (empty barrier region). The split-phase
// API remains available through Inner.
type SplitPoint struct {
	name  string
	inner core.SplitBarrier
}

// NewSplitPoint wraps a split-phase barrier under the given table name.
func NewSplitPoint(name string, b core.SplitBarrier) *SplitPoint {
	return &SplitPoint{name: name, inner: b}
}

// NewFuzzyPoint wraps a fresh central-counter fuzzy barrier for n
// participants.
func NewFuzzyPoint(n int) *SplitPoint {
	return NewSplitPoint("fuzzy", core.NewFuzzyBarrier(n))
}

// Inner exposes the wrapped split-phase barrier.
func (b *SplitPoint) Inner() core.SplitBarrier { return b.inner }

// Await implements Barrier.
func (b *SplitPoint) Await(id int) {
	checkID(id, b.inner.N())
	b.inner.Await()
}

// N implements Barrier.
func (b *SplitPoint) N() int { return b.inner.N() }

// Name implements Barrier.
func (b *SplitPoint) Name() string { return b.name }

// Spins implements Barrier.
func (b *SplitPoint) Spins() int64 {
	_, _, _, _, _, spinIters := b.inner.Stats()
	return spinIters
}

// Episodes implements Barrier.
func (b *SplitPoint) Episodes() int64 {
	syncs, _, _, _, _, _ := b.inner.Stats()
	return syncs
}
