// Package baseline implements the conventional software barriers the
// paper compares against: the centralized counter barrier (the "one or
// more shared variables" implementation of Section 1, whose overhead grows
// linearly with the processor count and which causes hot-spot accesses),
// the sense-reversing barrier, the software combining-tree barrier and the
// dissemination and tournament barriers (the logarithmic-cost
// implementations the paper's reference [4] points at).
//
// All implementations satisfy Barrier and count their spin iterations and
// episodes so the experiment harness can report overhead directly.
package baseline

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

// Barrier is a conventional (point) barrier for a fixed set of n
// participants, each identified by an id in [0, n).
type Barrier interface {
	// Await blocks participant id until all n participants have called
	// Await for the current episode.
	Await(id int)
	// N returns the number of participants.
	N() int
	// Name returns a short implementation name for tables.
	Name() string
	// Spins returns the total spin iterations across all participants —
	// the run-time overhead proxy used by experiment E2.
	Spins() int64
	// Episodes returns the number of completed barrier episodes.
	Episodes() int64
}

// pad prevents false sharing between adjacent per-participant words.
type pad [56]byte

// spinWait spins until cond() holds, yielding to the scheduler
// periodically, and returns the number of iterations spent.
func spinWait(cond func() bool) int64 {
	var iters int64
	for !cond() {
		iters++
		if iters%64 == 0 {
			runtime.Gosched()
		}
	}
	return iters
}

func checkN(n int) {
	if n < 1 {
		panic(fmt.Sprintf("baseline: barrier size %d < 1", n))
	}
}

func checkID(id, n int) {
	if id < 0 || id >= n {
		panic(fmt.Sprintf("baseline: participant id %d out of range [0,%d)", id, n))
	}
}

// ceilLog2 returns ⌈log2 n⌉ with ceilLog2(1) == 0.
func ceilLog2(n int) int {
	r := 0
	for v := 1; v < n; v <<= 1 {
		r++
	}
	return r
}

// Central is the centralized counter barrier: one shared arrival counter
// and one shared release word. Every participant performs an atomic
// fetch-and-add on the counter and then spins on the release word — both
// shared locations become hot spots, and the arrival phase serializes, so
// the cost grows linearly with n (Section 1).
type Central struct {
	n        int64
	_        pad
	count    atomic.Int64
	_        pad
	release  atomic.Int64 // completed-episode counter
	_        pad
	spins    atomic.Int64
	episodes atomic.Int64
}

// NewCentral creates a centralized counter barrier for n participants.
func NewCentral(n int) *Central {
	checkN(n)
	return &Central{n: int64(n)}
}

// Await implements Barrier.
func (b *Central) Await(id int) {
	checkID(id, int(b.n))
	target := b.release.Load() + 1
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.episodes.Add(1)
		b.release.Add(1)
		return
	}
	b.spins.Add(spinWait(func() bool { return b.release.Load() >= target }))
}

// N implements Barrier.
func (b *Central) N() int { return int(b.n) }

// Name implements Barrier.
func (b *Central) Name() string { return "central" }

// Spins implements Barrier.
func (b *Central) Spins() int64 { return b.spins.Load() }

// Episodes implements Barrier.
func (b *Central) Episodes() int64 { return b.episodes.Load() }

// SenseReversing is the classic sense-reversing barrier: a shared counter
// plus a shared sense flag; each participant keeps a private sense that
// flips every episode. It fixes the counter-reset race of naive counter
// barriers but still concentrates all traffic on two shared words.
type SenseReversing struct {
	n        int64
	_        pad
	count    atomic.Int64
	_        pad
	sense    atomic.Int64
	_        pad
	local    []paddedInt64
	spins    atomic.Int64
	episodes atomic.Int64
}

type paddedInt64 struct {
	v int64
	_ pad
}

// NewSenseReversing creates a sense-reversing barrier for n participants.
func NewSenseReversing(n int) *SenseReversing {
	checkN(n)
	return &SenseReversing{n: int64(n), local: make([]paddedInt64, n)}
}

// Await implements Barrier.
func (b *SenseReversing) Await(id int) {
	checkID(id, int(b.n))
	mySense := b.local[id].v + 1
	b.local[id].v = mySense
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.episodes.Add(1)
		b.sense.Store(mySense)
		return
	}
	b.spins.Add(spinWait(func() bool { return b.sense.Load() >= mySense }))
}

// N implements Barrier.
func (b *SenseReversing) N() int { return int(b.n) }

// Name implements Barrier.
func (b *SenseReversing) Name() string { return "sense-reversing" }

// Spins implements Barrier.
func (b *SenseReversing) Spins() int64 { return b.spins.Load() }

// Episodes implements Barrier.
func (b *SenseReversing) Episodes() int64 { return b.episodes.Load() }
