package baseline

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// checkBarrier verifies the fundamental barrier property for any
// implementation: between two consecutive Await calls, every participant
// observes that all n participants finished the previous episode. The
// classic detector is a shared counter incremented before the barrier and
// checked after it.
func checkBarrier(t *testing.T, mk func(n int) Barrier, n, episodes int) {
	t.Helper()
	b := mk(n)
	if b.N() != n {
		t.Fatalf("%s: N = %d, want %d", b.Name(), b.N(), n)
	}
	var counter atomic.Int64
	bad := make(chan int64, n*episodes)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for e := int64(0); e < int64(episodes); e++ {
				counter.Add(1)
				b.Await(id)
				if got := counter.Load(); got != int64(n)*(e+1) {
					bad <- got
				}
				b.Await(id) // keep the check window closed
			}
		}(p)
	}
	wg.Wait()
	close(bad)
	for v := range bad {
		t.Fatalf("%s (n=%d): counter = %d between episodes (barrier leaked)", b.Name(), n, v)
	}
	if got := b.Episodes(); got != int64(2*episodes) {
		t.Errorf("%s: episodes = %d, want %d", b.Name(), got, 2*episodes)
	}
}

// constructors for every implementation under test.
var constructors = map[string]func(n int) Barrier{
	"central":         func(n int) Barrier { return NewCentral(n) },
	"sense-reversing": func(n int) Barrier { return NewSenseReversing(n) },
	"tree":            func(n int) Barrier { return NewTree(n, 4) },
	"tree-fan2":       func(n int) Barrier { return NewTree(n, 2) },
	"dissemination":   func(n int) Barrier { return NewDissemination(n) },
	"tournament":      func(n int) Barrier { return NewTournament(n) },
	"fuzzy":           func(n int) Barrier { return NewFuzzyPoint(n) },
	"fuzzy-tree":      func(n int) Barrier { b, _ := New("fuzzy-tree", n); return b },
}

func TestAllBarrierImplementations(t *testing.T) {
	for name, mk := range constructors {
		for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 13, 16} {
			name, mk, n := name, mk, n
			t.Run(name+"/n="+itoa(n), func(t *testing.T) {
				t.Parallel()
				checkBarrier(t, mk, n, 50)
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}

// TestBarrierPropertyRandomSizes drives random (implementation, size,
// episodes) combinations through the counter detector.
func TestBarrierPropertyRandomSizes(t *testing.T) {
	names := Names()
	f := func(pick, size, eps uint8) bool {
		name := names[int(pick)%len(names)]
		n := int(size%10) + 1
		episodes := int(eps%20) + 1
		b, err := New(name, n)
		if err != nil {
			return false
		}
		var counter atomic.Int64
		okFlag := atomic.Bool{}
		okFlag.Store(true)
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for e := int64(0); e < int64(episodes); e++ {
					counter.Add(1)
					b.Await(id)
					if counter.Load() != int64(n)*(e+1) {
						okFlag.Store(false)
					}
					b.Await(id)
				}
			}(p)
		}
		wg.Wait()
		return okFlag.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFactory(t *testing.T) {
	for _, name := range Names() {
		b, err := New(name, 4)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if b.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, b.Name())
		}
	}
	if _, err := New("bogus", 4); err == nil {
		t.Error("expected error for unknown barrier")
	}
}

func TestSplitFactory(t *testing.T) {
	for _, name := range SplitNames() {
		b, err := NewSplit(name, 4)
		if err != nil {
			t.Errorf("NewSplit(%q): %v", name, err)
			continue
		}
		if b.N() != 4 {
			t.Errorf("NewSplit(%q).N() = %d, want 4", name, b.N())
		}
		// Every split name must also be constructible as a point barrier.
		if _, err := New(name, 4); err != nil {
			t.Errorf("New(%q): %v", name, err)
		}
	}
	if _, err := NewSplit("central", 4); err == nil {
		t.Error("expected error for non-split name")
	}
}

func TestTreeDepth(t *testing.T) {
	cases := []struct {
		n, fanIn, depth int
	}{
		{4, 4, 1},
		{16, 4, 2},
		{17, 4, 3},
		{64, 4, 3},
		{8, 2, 3},
	}
	for _, c := range cases {
		b := NewTree(c.n, c.fanIn)
		if got := b.Depth(); got != c.depth {
			t.Errorf("Tree(%d,fan %d).Depth = %d, want %d", c.n, c.fanIn, got, c.depth)
		}
	}
}

func TestDisseminationRounds(t *testing.T) {
	for n, want := range map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4} {
		if got := NewDissemination(n).Rounds(); got != want {
			t.Errorf("Dissemination(%d).Rounds = %d, want %d", n, got, want)
		}
	}
}

func TestTournamentRounds(t *testing.T) {
	for n, want := range map[int]int{2: 1, 3: 2, 4: 2, 8: 3, 16: 4} {
		if got := NewTournament(n).Rounds(); got != want {
			t.Errorf("Tournament(%d).Rounds = %d, want %d", n, got, want)
		}
	}
}

func TestPanicsOnBadArguments(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("central n=0", func() { NewCentral(0) })
	mustPanic("await id out of range", func() { NewCentral(2).Await(2) })
	mustPanic("dissemination n=0", func() { NewDissemination(0) })
}

func TestSpinsAccumulate(t *testing.T) {
	// With a deliberately unbalanced arrival pattern, waiters must spin.
	b := NewCentral(2)
	done := make(chan struct{})
	go func() {
		b.Await(0)
		close(done)
	}()
	// Give the first arriver time to start spinning.
	for i := 0; i < 1000; i++ {
		if b.Spins() > 0 {
			break
		}
	}
	b.Await(1)
	<-done
	if b.Spins() == 0 {
		t.Log("no spins observed (single-core scheduling); not a failure")
	}
	if b.Episodes() != 1 {
		t.Errorf("episodes = %d, want 1", b.Episodes())
	}
}
