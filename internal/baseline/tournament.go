package baseline

import "sync/atomic"

// Tournament is the tournament barrier: participants play ⌈log2 n⌉
// statically scheduled rounds; in each round the "loser" signals the
// "winner" and waits to be woken, and the overall champion (participant 0)
// unwinds the bracket to wake everyone. Like dissemination it is hot-spot
// free with a logarithmic critical path; unlike dissemination only one
// signal is sent per pair per round.
type Tournament struct {
	n        int
	rounds   int
	arrive   [][]atomic.Int64 // [winner][round] arrival epochs
	wake     [][]atomic.Int64 // [loser][round] wakeup epochs
	state    []dissState
	spins    atomic.Int64
	episodes atomic.Int64
}

// NewTournament creates a tournament barrier for n participants.
func NewTournament(n int) *Tournament {
	checkN(n)
	rounds := ceilLog2(n)
	b := &Tournament{n: n, rounds: rounds, state: make([]dissState, n)}
	b.arrive = make([][]atomic.Int64, n)
	b.wake = make([][]atomic.Int64, n)
	for i := 0; i < n; i++ {
		b.arrive[i] = make([]atomic.Int64, rounds+1)
		b.wake[i] = make([]atomic.Int64, rounds+1)
	}
	return b
}

// Await implements Barrier.
func (b *Tournament) Await(id int) {
	checkID(id, b.n)
	st := &b.state[id]
	st.epoch++
	target := st.epoch

	// Arrival phase: climb the bracket until losing (or becoming
	// champion).
	lostAt := 0 // round at which id lost; 0 means champion
	for k := 1; k <= b.rounds; k++ {
		step := 1 << uint(k-1)
		if id%(1<<uint(k)) == 0 {
			opp := id + step
			if opp < b.n {
				// Winner: wait for the loser's arrival signal.
				f := &b.arrive[id][k]
				b.spins.Add(spinWait(func() bool { return f.Load() >= target }))
			}
			// Bye when opp >= n: advance silently.
			continue
		}
		// Loser: signal the winner and stop climbing.
		winner := id - step
		b.arrive[winner][k].Add(1)
		lostAt = k
		break
	}

	if lostAt == 0 {
		// Champion: everyone has arrived.
		b.episodes.Add(1)
	} else {
		// Wait to be woken by the round we lost.
		f := &b.wake[id][lostAt]
		b.spins.Add(spinWait(func() bool { return f.Load() >= target }))
	}

	// Wakeup phase: wake the losers beaten in earlier rounds (the
	// champion unwinds from the top).
	top := b.rounds
	if lostAt != 0 {
		top = lostAt - 1
	}
	for k := top; k >= 1; k-- {
		loser := id + (1 << uint(k-1))
		if loser < b.n {
			b.wake[loser][k].Add(1)
		}
	}
}

// N implements Barrier.
func (b *Tournament) N() int { return b.n }

// Name implements Barrier.
func (b *Tournament) Name() string { return "tournament" }

// Spins implements Barrier.
func (b *Tournament) Spins() int64 { return b.spins.Load() }

// Episodes implements Barrier.
func (b *Tournament) Episodes() int64 { return b.episodes.Load() }

// Rounds returns the bracket depth.
func (b *Tournament) Rounds() int { return b.rounds }
