package baseline

import "sync/atomic"

// Tree is a software combining-tree barrier (the hot-spot remedy of the
// paper's reference [4]): arrivals combine up a tree of counters with a
// small fan-in, so no single location receives more than fanIn atomic
// operations per episode during the arrival phase. Release uses a single
// shared episode word, which is read-shared (one invalidation per
// episode) rather than write-contended.
type Tree struct {
	n        int
	fanIn    int
	nodes    []treeNode
	leaf     []int // participant -> leaf node index
	_        pad
	release  atomic.Int64
	_        pad
	spins    atomic.Int64
	episodes atomic.Int64
}

type treeNode struct {
	count  atomic.Int64
	total  int64
	parent int // -1 for root
	_      pad
}

// NewTree creates a combining-tree barrier with the given fan-in
// (values < 2 default to 4).
func NewTree(n, fanIn int) *Tree {
	checkN(n)
	if fanIn < 2 {
		fanIn = 4
	}
	b := &Tree{n: n, fanIn: fanIn, leaf: make([]int, n)}

	// Build the tree bottom-up: level 0 groups participants into leaves,
	// each higher level groups the nodes of the level below.
	type level struct{ first, count int }
	var levels []level
	// Leaves.
	nLeaves := (n + fanIn - 1) / fanIn
	if nLeaves == 0 {
		nLeaves = 1
	}
	b.nodes = make([]treeNode, 0, 2*nLeaves)
	for i := 0; i < nLeaves; i++ {
		total := fanIn
		if i == nLeaves-1 {
			total = n - fanIn*(nLeaves-1)
			if total == 0 {
				total = fanIn
			}
		}
		b.nodes = append(b.nodes, treeNode{total: int64(total), parent: -1})
	}
	levels = append(levels, level{0, nLeaves})
	for p := 0; p < n; p++ {
		b.leaf[p] = p / fanIn
	}
	// Interior levels.
	for levels[len(levels)-1].count > 1 {
		prev := levels[len(levels)-1]
		cnt := (prev.count + fanIn - 1) / fanIn
		first := len(b.nodes)
		for i := 0; i < cnt; i++ {
			total := fanIn
			if i == cnt-1 {
				total = prev.count - fanIn*(cnt-1)
				if total == 0 {
					total = fanIn
				}
			}
			b.nodes = append(b.nodes, treeNode{total: int64(total), parent: -1})
		}
		for i := 0; i < prev.count; i++ {
			b.nodes[prev.first+i].parent = first + i/fanIn
		}
		levels = append(levels, level{first, cnt})
	}
	return b
}

// Await implements Barrier.
func (b *Tree) Await(id int) {
	checkID(id, b.n)
	target := b.release.Load() + 1
	node := b.leaf[id]
	// Climb while we are the last arriver at each node.
	for node >= 0 {
		nd := &b.nodes[node]
		if nd.count.Add(1) < nd.total {
			// Not last here; wait for the release.
			b.spins.Add(spinWait(func() bool { return b.release.Load() >= target }))
			return
		}
		nd.count.Store(0)
		node = nd.parent
	}
	// Last arriver at the root releases everyone.
	b.episodes.Add(1)
	b.release.Add(1)
}

// N implements Barrier.
func (b *Tree) N() int { return b.n }

// Name implements Barrier.
func (b *Tree) Name() string { return "tree" }

// Spins implements Barrier.
func (b *Tree) Spins() int64 { return b.spins.Load() }

// Episodes implements Barrier.
func (b *Tree) Episodes() int64 { return b.episodes.Load() }

// Depth returns the height of the combining tree (number of levels above
// the participants); the arrival critical path is Depth atomic operations.
func (b *Tree) Depth() int {
	d := 0
	node := 0
	for node >= 0 {
		d++
		node = b.nodes[node].parent
	}
	return d
}
