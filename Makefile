# Developer entry points. `make verify` is the full pre-merge gate;
# tier-1 (ROADMAP.md) is the build+test subset.

GO ?= go

.PHONY: verify build vet test race bench bench-smoke bench-smoke-multicore bench-gate fmt-check check

verify: build vet race check fmt-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race-detector run subsumes `make test` (same packages, -race adds
# the happens-before checker); internal/core carries dedicated TestRace*
# stress tests written for this mode, and internal/cluster's property
# tests (TestPropertyNoEarlyRelease) run their fault-injected sims as
# parallel subtests so -race checks the sims share no hidden state.
race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# CI-sized benchmark smoke test: one iteration of the n=8 split-scaling
# points, the allocs/op=0 check on the barrier hot path, the fast-forward,
# sweep-pool, and cluster-engine before/after benchmarks, and a
# machine-readable barbench run (-sim adds the before/after pairs —
# including the serial-vs-sharded parallel_engine pair and the 4096x64
# seed_batch time — and -scaling the central/tree/hier ns-per-episode
# and hotspot curves up to 16384 participants, oversubscribed counts
# recorded as skipped) archived as BENCH_SMOKE.json. The two barrierload runs merge the
# epoch-service latency numbers (million-client in-process, 10k-client
# loopback UDP) into the same file under "barrierd_load"; every entry
# carries maxprocs so single-core results are interpretable.
bench-smoke:
	$(GO) test -run '^$$' -bench 'E2SplitScaling/[^/]*/p8/region=0$$' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BarrierHotPathAllocs' -benchtime 100x -benchmem ./internal/core
	$(GO) test -run '^$$' -bench 'MachineFastForward|SweepParallel' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'ClusterEngine' -benchtime 1x -benchmem .
	$(GO) run ./cmd/barbench -procs 2 -episodes 5000 -json -sim -scaling > BENCH_SMOKE.json
	$(GO) run ./cmd/barrierload -clients 1000000 -groups 4 -conns 32 -epochs 4 -merge BENCH_SMOKE.json
	$(GO) run ./cmd/barrierload -transport udp -clients 10000 -groups 2 -conns 8 -epochs 4 -merge BENCH_SMOKE.json
	@head -c 200 BENCH_SMOKE.json; echo; echo "wrote BENCH_SMOKE.json"

# bench-smoke pinned to every available core: refuses to run on a
# single-core host (the speedup columns would be vacuous there) and
# makes the GOMAXPROCS recorded in BENCH_SMOKE.json explicit.
bench-smoke-multicore:
	@n=$$(nproc); if [ "$$n" -lt 2 ]; then \
		echo "bench-smoke-multicore: need >= 2 CPUs, have $$n (use bench-smoke)"; exit 1; fi
	GOMAXPROCS=$$(nproc) $(MAKE) bench-smoke

# Perf regression gates: fail if fast-forwarded machine.Run is not
# comfortably faster than the naive per-cycle loop on a stall-heavy
# workload (threshold 1.2x; typical measured ratio is ~10x), if the
# typed-event cluster engine is not >= 2.5x the closure heap on a lossy
# 256/1024-node sweep, if the sharded lookahead-window engine is not
# >= 2x the serial fast engine at 1024 nodes (self-skips below 4
# cores), if the sweep worker pool is not >= 1.2x on the E15 grid, or
# if the hierarchical barrier's hotspot-ops/phase exceeds the flat
# tree's at n >= 4096 (the parallel gates self-skip when GOMAXPROCS is
# too low — one core cannot show parallel contention or speedup).
bench-gate:
	BENCH_GATE=1 $(GO) test -run TestFastForwardSpeedupGate -count=1 -v ./internal/machine
	BENCH_GATE=1 $(GO) test -run 'TestClusterEngineSpeedupGate|TestParallelEngineSpeedupGate' -count=1 -v ./internal/cluster
	BENCH_GATE=1 $(GO) test -run TestSweepParallelSpeedupGate -count=1 -v ./internal/exp
	BENCH_GATE=1 $(GO) test -run TestHierHotspotGate -count=1 -v .

# Model checking + weak-memory stress, CI-sized (<60s): exhaustively
# verify every cluster protocol at n<=3 under the full adversary
# (reorder, duplicate, drop) including the mutation negative tests that
# prove the checker has teeth, then hammer the runtime barriers with
# randomized schedules under the race detector — TestStress* covers the
# reduce-barrier fold check and phaser churn, TestRace* the plain-slot
# ordering baits. The wide n=4 sweep and full-length stress runs live
# behind the non-short suite (`make race`). The final line runs a short
# native-fuzz burst over the transport wire codec (the seed corpus plus
# 500 mutated inputs) so codec regressions surface pre-merge without a
# long fuzzing session.
check:
	$(GO) test -short -count=1 ./internal/check
	$(GO) test -race -short -count=1 -run 'TestStress|TestRace' ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzMessageCodec -fuzztime 500x ./internal/transport

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
