// Package fuzzybarrier reproduces "The Fuzzy Barrier: A Mechanism for
// High Speed Synchronization of Processors" (Rajiv Gupta, ASPLOS 1989).
//
// The fuzzy barrier replaces the single synchronization point of a
// conventional barrier with a *region* of instructions: a processor is
// ready to synchronize when it enters the region, keeps executing inside
// it while synchronization is pending, and stalls only if it reaches the
// region's end first. The repository contains:
//
//   - internal/core — the mechanism itself: the hardware barrier unit
//     (state machine, tag/mask register, broadcast ready lines), a
//     runtime split-phase barriers (Arrive/Wait) for goroutines — the
//     central-counter FuzzyBarrier, a combining-tree TreeBarrier for
//     large participant counts, and a DynamicBarrier with
//     register/arrive-and-leave membership (the runtime form of
//     Section 5's mask manipulation) — and the Section 5 multi-barrier
//     allocation discipline;
//   - internal/machine, internal/mem, internal/isa — a deterministic
//     cycle-level multiprocessor simulator with per-instruction
//     barrier-region bits;
//   - internal/lang, internal/ir, internal/dag, internal/compiler — the
//     Section 4 parallelizing compiler: dependence analysis, marked
//     instructions, region construction, three-phase DAG reordering,
//     loop distribution and unrolling;
//   - internal/baseline — conventional software barriers (central
//     counter, sense-reversing, combining tree, dissemination,
//     tournament);
//   - internal/sched, internal/workload, internal/exp — schedulers,
//     workload generators and the experiment harness regenerating every
//     table and figure of the paper (cmd/experiments);
//   - internal/trace, internal/stats — observability: Gantt/event
//     recording, per-phase cycle attribution (Phases), Chrome
//     trace-event export (WriteChrome), table rendering and numeric
//     helpers; the runtime barriers expose counter/histogram snapshots
//     (core.BarrierStats). All hooks accept nil receivers and are
//     allocation-free when disabled.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package fuzzybarrier
