module fuzzybarrier

go 1.22
