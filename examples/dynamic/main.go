// Dynamic membership: Section 5's mask manipulation at runtime.
//
// Four workers share one barrier but own different iteration counts (a
// non-divisible workload). With a fixed-membership barrier the early
// finishers would have to keep synchronizing forever (or everyone would
// deadlock); with the DynamicBarrier each finished worker departs with
// ArriveAndLeave — its obligation disappears, and the survivors keep
// synchronizing among themselves. A fifth worker even joins late with
// Register, the runtime analog of spawning a stream and allocating its
// barrier.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"sync"
	"sync/atomic"

	"fuzzybarrier/internal/core"
)

func main() {
	counts := []int{3, 5, 8, 12}
	b := core.NewDynamicBarrier(len(counts))
	var phasesSeen [5]atomic.Int64

	var wg sync.WaitGroup
	worker := func(id, n int) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			ph := b.Arrive()
			// barrier region: private bookkeeping while others catch up
			phasesSeen[id].Add(1)
			b.Wait(ph)
		}
		b.ArriveAndLeave()
		fmt.Printf("worker %d left after %d phases (members now %d)\n", id, n, b.Members())
	}
	for id, n := range counts {
		wg.Add(1)
		go worker(id, n)
	}

	// A late joiner: registers, participates for a few phases, leaves.
	wg.Add(1)
	go func() {
		defer wg.Done()
		b.Register()
		worker2 := 4
		for i := 0; i < 4; i++ {
			ph := b.Arrive()
			phasesSeen[worker2].Add(1)
			b.Wait(ph)
		}
		b.ArriveAndLeave()
		fmt.Printf("late joiner left after 4 phases (members now %d)\n", b.Members())
	}()

	wg.Wait()
	syncs, arrivals, _, _, blocks, _ := b.Stats()
	fmt.Printf("\ncompleted phases=%d arrivals=%d blocked-waits=%d members=%d\n",
		syncs, arrivals, blocks, b.Members())
	fmt.Println("No deadlock despite four different finishing times and a late join:")
	fmt.Println("leaving removes a stream's arrival obligation, exactly like clearing")
	fmt.Println("its bit in every partner's hardware mask (Section 5).")
}
