// GSS: run-time scheduling of a loop with unknown trip count (Figure 12).
//
// Four workers drain a triangular-cost iteration space through three
// dynamic schedulers — one-at-a-time self-scheduling, fixed chunks, and
// guided self-scheduling — and then synchronize. Each claimed chunk's
// iterations are classified into the paper's four compiled loop-body
// versions (first / last / middle / only), which decide where the barrier
// region boundaries fall: the first iteration of a chunk still belongs to
// the previous barrier region, the last opens the next one.
//
//	go run ./examples/gss
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/sched"
)

const (
	workers = 4
	iters   = 400
	rounds  = 8
)

// cost simulates iteration i's triangular workload.
func cost(i int) {
	x := uint64(i + 1)
	for k := 0; k < 200*(i%40+1); k++ {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
	}
	sink.Add(int64(x & 1))
}

var sink atomic.Int64

func run(mk func() sched.Dynamic) (time.Duration, int64, map[sched.Version]int64) {
	d := mk()
	bar := core.NewFuzzyBarrier(workers)
	versions := make(map[sched.Version]*atomic.Int64)
	for _, v := range []sched.Version{sched.VersionFirst, sched.VersionLast, sched.VersionMiddle, sched.VersionOnly} {
		versions[v] = new(atomic.Int64)
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for {
					lo, size, ok := d.Next()
					if !ok {
						break
					}
					for k := 0; k < size; k++ {
						versions[sched.VersionFor(k, size)].Add(1)
						cost(lo + k)
					}
				}
				// End-of-round fuzzy barrier: per-worker bookkeeping is
				// the barrier region.
				ph := bar.Arrive()
				sink.Add(1) // region work placeholder
				bar.Wait(ph)
				if w == 0 {
					d.Reset(iters)
				}
				bar.Await() // publish the reset before the next round
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	_, _, _, _, blocks, _ := bar.Stats()
	out := make(map[sched.Version]int64)
	for v, c := range versions {
		out[v] = c.Load()
	}
	return elapsed, blocks, out
}

func main() {
	schedulers := []struct {
		name string
		mk   func() sched.Dynamic
	}{
		{"self(1)", func() sched.Dynamic { return sched.NewSelfSched(iters) }},
		{"chunk(16)", func() sched.Dynamic { d, _ := sched.NewChunked(iters, 16); return d }},
		{"gss", func() sched.Dynamic { d, _ := sched.NewGSS(iters, workers); return d }},
	}
	for _, s := range schedulers {
		elapsed, blocks, versions := run(s.mk)
		fmt.Printf("%-10s %-12v blocked-waits=%-5d versions: first=%d last=%d middle=%d only=%d\n",
			s.name, elapsed, blocks,
			versions[sched.VersionFirst], versions[sched.VersionLast],
			versions[sched.VersionMiddle], versions[sched.VersionOnly])
	}
	fmt.Println("\nGSS takes large chunks early and small ones late, so workers finish")
	fmt.Println("together; 'only' chunks (version 4) appear when a grab returns a single")
	fmt.Println("iteration — the compiled-version selection of Figure 12.")
}
