// Simulator: build a two-processor program with barrier regions by hand,
// run it on the cycle-level simulator, and print the Gantt chart — the
// fastest way to *see* the fuzzy barrier absorb drift.
//
// Two processors alternate fast/slow iterations (transient drift). The
// first run uses a point barrier: the early processor stalls ('S') every
// iteration. The second gives each iteration a 30-cycle barrier region:
// the stalls disappear because the early processor executes region work
// ('w' inside the region) while its partner catches up.
//
//	go run ./examples/simulator
package main

import (
	"fmt"
	"os"

	"fuzzybarrier/internal/core"
	"fuzzybarrier/internal/isa"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/mem"
	"fuzzybarrier/internal/trace"
)

const iters = 4

// program builds the alternating-drift loop for one processor. Every
// iteration's body costs the same total (work + 30 trailing cycles); the
// fuzzy variant reclassifies those trailing 30 cycles as the barrier
// region, the point variant keeps them in the non-barrier code and
// synchronizes at a single nop — same work, different region structure.
func program(self int, region int64) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("demo-p%d", self))
	b.BarrierInit(1, uint64(core.AllExcept(2, self)))
	for k := 0; k < iters; k++ {
		b.InNonBarrier()
		work := int64(10)
		if (k+self)%2 == 0 {
			work = 30 // this processor is slow this iteration
		}
		if region == 0 {
			work += 30 // the would-be region work stays in the body
		}
		b.Work(work).Comment("iteration %d work", k)
		b.InBarrier()
		if region > 0 {
			b.Work(region).Comment("iteration %d barrier region", k)
		} else {
			b.Nop().Comment("point barrier")
		}
	}
	b.InNonBarrier().Halt()
	return b.MustBuild()
}

func run(region int64) {
	rec := trace.NewRecorder(2)
	m := machine.New(machine.Config{
		Procs:    2,
		Mem:      mem.Config{Words: 128, Procs: 2, HitLatency: 1, MissLatency: 1, Modules: 2},
		Recorder: rec,
	})
	for p := 0; p < 2; p++ {
		if err := m.Load(p, program(p, region)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	res, err := m.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cycles=%d  stalls: P0=%d P1=%d  syncs=%d\n",
		res.Cycles, res.Procs[0].StallCycles, res.Procs[1].StallCycles, res.Syncs())
	fmt.Print(rec.Gantt())
}

func main() {
	fmt.Println("point barrier (region = 1 nop): the early processor stalls ('S'):")
	run(0)
	fmt.Println("\nfuzzy barrier (region = 30 cycles): drift absorbed, no stalls:")
	run(30)
	fmt.Println("\nlegend: '=' non-barrier exec, 'w' work, 'b' barrier-region instr,")
	fmt.Println("        'S' stalled, '*' synchronization fired, ' ' halted")
}
