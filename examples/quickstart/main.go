// Quickstart: the split-phase fuzzy barrier in twenty lines.
//
// Four workers run a loop of phases. In each phase a worker produces a
// value other workers will read next phase (the "marked" work), then
// calls Arrive — it is now ready to synchronize. Instead of idling until
// the others catch up, it does its private bookkeeping (the "barrier
// region"), and only Wait-s when it actually needs the next phase's data.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"fuzzybarrier/internal/core"
)

const (
	workers = 4
	phases  = 5
)

func main() {
	b := core.NewFuzzyBarrier(workers)
	shared := make([]int, workers) // phase outputs, one slot per worker

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			private := 0
			for phase := 0; phase < phases; phase++ {
				// Work others depend on: publish my value for this phase.
				shared[id] = id*100 + phase

				ph := b.Arrive() // ready to synchronize; does not block

				// Barrier region: work only I depend on, executed while
				// the other workers are still publishing.
				private += id + phase

				b.Wait(ph) // block only if someone has not arrived yet

				// Safe: every worker's phase value is published.
				sum := 0
				for _, v := range shared {
					sum += v
				}
				if id == 0 {
					fmt.Printf("phase %d: sum of published values = %d\n", phase, sum)
				}
			}
		}(w)
	}
	wg.Wait()

	syncs, arrivals, fast, spins, blocks, _ := b.Stats()
	fmt.Printf("episodes=%d arrivals=%d waits: fast=%d spin=%d blocked=%d\n",
		syncs, arrivals, fast, spins, blocks)
}
