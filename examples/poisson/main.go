// Poisson: the paper's motivating workload (Figure 3) at realistic scale,
// run on goroutines with a real data dependence structure.
//
// A Jacobi sweep over an N×N grid is partitioned into horizontal blocks,
// one per worker. Between sweeps every worker must see its neighbours'
// *boundary* rows — but only those. That makes the boundary updates the
// "marked" work of Section 4 and the interior updates a natural barrier
// region:
//
//	point barrier:  compute everything, Await, swap
//	fuzzy barrier:  compute boundary rows, Arrive,
//	                compute interior rows,  Wait, swap
//
// With the fuzzy barrier a worker that finishes its boundary early
// overlaps its interior work with slower neighbours instead of blocking —
// the barrier-region construction of the paper performed by hand at the
// source level ("a programmer may be able to construct barrier regions
// while coding an application", Section 4).
//
//	go run ./examples/poisson
package main

import (
	"fmt"
	"sync"
	"time"

	"fuzzybarrier/internal/core"
)

const (
	n       = 256 // grid size (including fixed boundary)
	workers = 4
	sweeps  = 150
)

type grid [][]float64

func newGrid() grid {
	g := make(grid, n)
	for i := range g {
		g[i] = make([]float64, n)
	}
	// Hot left edge, cold elsewhere: boundary conditions.
	for i := 0; i < n; i++ {
		g[i][0] = 100
	}
	return g
}

// sweepRows applies the Jacobi update to rows [lo, hi) of src into dst.
func sweepRows(dst, src grid, lo, hi int) {
	if lo < 1 {
		lo = 1
	}
	if hi > n-1 {
		hi = n - 1
	}
	for i := lo; i < hi; i++ {
		for j := 1; j < n-1; j++ {
			dst[i][j] = (src[i][j+1] + src[i][j-1] + src[i+1][j] + src[i-1][j]) / 4
		}
	}
}

// run executes the solver; fuzzy selects split-phase synchronization.
func run(fuzzy bool) (time.Duration, int64, float64) {
	a, b := newGrid(), newGrid()
	bar := core.NewFuzzyBarrier(workers)
	rows := (n - 2 + workers - 1) / workers

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lo := 1 + id*rows
			hi := lo + rows
			if hi > n-1 {
				hi = n - 1
			}
			src, dst := a, b
			for s := 0; s < sweeps; s++ {
				if fuzzy {
					// Marked work first: the rows neighbours read.
					sweepRows(dst, src, lo, lo+1)
					sweepRows(dst, src, hi-1, hi)
					ph := bar.Arrive()
					// Barrier region: rows only this worker touches.
					sweepRows(dst, src, lo+1, hi-1)
					bar.Wait(ph)
				} else {
					sweepRows(dst, src, lo, hi)
					bar.Await()
				}
				src, dst = dst, src
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	_, _, _, _, blocks, _ := bar.Stats()
	// Result lives in the source of the next (unexecuted) sweep.
	res := a
	if sweeps%2 == 1 {
		res = b
	}
	center := res[n/2][4]
	return elapsed, blocks, center
}

func main() {
	for _, fuzzy := range []bool{false, true} {
		kind := "point barrier"
		if fuzzy {
			kind = "fuzzy barrier"
		}
		elapsed, blocks, center := run(fuzzy)
		fmt.Printf("%-14s  %4d sweeps of %dx%d on %d workers: %-12v blocked-waits=%-6d grid[%d][4]=%.6f\n",
			kind, sweeps, n, n, workers, elapsed, blocks, n/2, center)
	}
	fmt.Println("\nThe two variants must print identical grid values. The fuzzy run")
	fmt.Println("overlaps interior work with slow neighbours, so it finishes sooner;")
	fmt.Println("on a single-core machine the win comes from wasting fewer spin cycles.")
}
