; A two-processor drift loop for cmd/fuzzsim. Run with:
;     go run ./cmd/fuzzsim -procs 2 -trace examples/programs/driftloop.s
; Every processor executes the same stream; the BARRIER mask 0x3 makes
; each synchronize with the other (its own bit is ignored).
.program driftloop
    BARRIER 1, 0x3
    LDI  r1, 0
    LDI  r2, 6
loop:
    WORK 12            ; non-barrier work
.barrier
    WORK 20            ; barrier region: absorbs drift
    ADDI r1, r1, 1
    BLT  r1, r2, loop
.nonbarrier
    HALT
