; Figure 2's invalid branch: control moves straight from barrier1 into
; barrier2, so this processor crosses both with one synchronization.
; fuzzsim prints a validation warning and (run against fig2-partner.s)
; detects the deadlock:
;     go run ./cmd/fuzzsim examples/programs/invalid-fig2.s examples/programs/fig2-partner.s
.program fig2-invalid
    BARRIER 1, 0x2
.barrier
    NOP
    BR  bar2           ; INVALID: skips the non-barrier region
.nonbarrier
    WORK 10
.barrier
bar2:
    NOP
    NOP
.nonbarrier
    HALT
