; The partner stream for invalid-fig2.s: it expects TWO synchronizations
; and deadlocks at the second one.
.program fig2-partner
    BARRIER 1, 0x1
.barrier
    NOP
.nonbarrier
    WORK 10
.barrier
    NOP
    NOP
.nonbarrier
    HALT
