// Compiler: walk through the Section 4 compilation of the Poisson solver
// (Figure 3 → Figure 4): dependence analysis marks the array accesses,
// region construction splits barrier from non-barrier code, and the
// three-phase DAG reordering moves the address arithmetic out of the
// non-barrier region — then both versions run on the simulator under
// cache-miss drift to show the reordered code stalling less.
//
//	go run ./examples/compiler
package main

import (
	"fmt"
	"os"
	"strings"

	"fuzzybarrier/internal/compiler"
	"fuzzybarrier/internal/lang"
	"fuzzybarrier/internal/machine"
	"fuzzybarrier/internal/mem"
)

const src = `
int P[4][4];
for (k=1; k<=40; k++) do seq
  for (i=1; i<=2; i++) do par
    for (j=1; j<=2; j++) do par {
      P[i][j] = (P[i][j+1] + P[i][j-1] + P[i+1][j] + P[i-1][j]) / 4;
    }
`

func main() {
	prog, err := lang.Parse(src)
	if err != nil {
		fail(err)
	}
	fmt.Println("source (Figure 3(a), M=2):")
	fmt.Println(indent(prog.String()))

	for _, mode := range []compiler.RegionMode{compiler.RegionSpan, compiler.RegionReorder} {
		c, err := compiler.Compile(prog, compiler.Options{Procs: 4, Mode: mode})
		if err != nil {
			fail(err)
		}
		st := c.Tasks[0].Stats
		fmt.Printf("== mode %s: non-barrier=%d barrier=%d marked=%d ==\n",
			mode, st.NonBarrier, st.Barrier, st.Marked)
		if mode == compiler.RegionSpan {
			fmt.Printf("marked accesses: %s\n", strings.Join(c.Marked, " "))
		}
		fmt.Println(indent(c.Tasks[0].TAC.String()))

		// Simulate under cache-miss drift.
		m := machine.New(machine.Config{
			Procs: 4,
			Mem: mem.Config{
				Words: int(c.Layout.Words) + 64, Procs: 4,
				HitLatency: 1, MissLatency: 24,
				CacheLines: 64, LineWords: 2, Modules: 4,
				MissEveryN: 5,
			},
		})
		for _, task := range c.Tasks {
			if err := m.Load(task.Proc, task.Machine); err != nil {
				fail(err)
			}
		}
		res, err := m.Run()
		if err != nil {
			fail(err)
		}
		fmt.Printf("simulated with cache-miss drift: cycles=%d total-stalls=%d syncs=%d\n\n",
			res.Cycles, res.TotalStalls(), res.Syncs())
	}
	fmt.Println("Reordering (Figure 4(b)) moves the address computations into the")
	fmt.Println("barrier region, so the same drift produces fewer stall cycles.")
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "    " + strings.Join(lines, "\n    ") + "\n"
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "example:", err)
	os.Exit(1)
}
