package fuzzybarrier_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"fuzzybarrier/internal/core"
)

// TestHierHotspotGate is the perf regression gate for the hierarchical
// barrier (run by `make bench-gate` with BENCH_GATE=1): at n >= 4096
// participants under real concurrency, the hier barrier's hottest
// counter word must absorb no more atomic traffic per phase than the
// flat combining tree's. The tree's collision probes are add+undo write
// pairs that pile onto whichever leaf the stack-address hash crowds;
// the hierarchy's read-only probing and full-shard skips are what this
// gate pins. Like the sweep-pool gate it skips on GOMAXPROCS=1 —
// without parallelism the goroutines arrive in near-serial order, no
// probe storms form on either side, and the comparison is vacuous
// (the deterministic single-core counterpart is experiment E20).
func TestHierHotspotGate(t *testing.T) {
	if os.Getenv("BENCH_GATE") == "" {
		t.Skip("set BENCH_GATE=1 to run the hier hotspot gate")
	}
	if runtime.GOMAXPROCS(0) == 1 {
		t.Skip("GOMAXPROCS=1: arrivals serialize, hotspot contention cannot form on one core")
	}
	const episodes = 10
	run := func(b core.SplitBarrier, workers int) float64 {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for e := 0; e < episodes; e++ {
					b.Wait(b.Arrive())
				}
			}()
		}
		wg.Wait()
		prof := b.(core.ArriveProfiler)
		ops, phases := prof.HotspotOps()
		if phases != episodes {
			t.Fatalf("%T: phases = %d, want %d", b, phases, episodes)
		}
		return float64(ops) / float64(phases)
	}
	for _, workers := range []int{4096, 8192} {
		t.Run(fmt.Sprintf("n%d", workers), func(t *testing.T) {
			tree := run(core.NewTreeBarrier(workers), workers)
			hier := run(core.NewHierBarrier(workers), workers)
			central := float64(workers + 1) // the FuzzyBarrier hotspot, by construction
			t.Logf("hotspot ops/phase at n=%d: central=%.0f tree=%.1f hier=%.1f (maxprocs=%d)",
				workers, central, tree, hier, runtime.GOMAXPROCS(0))
			if hier > tree {
				t.Fatalf("hier hotspot %.1f ops/phase exceeds tree's %.1f at n=%d", hier, tree, workers)
			}
		})
	}
}
